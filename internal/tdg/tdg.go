// Package tdg implements the Task Dependency Graph, the central data
// structure of the runtime-aware architecture: the paper's premise is that a
// task-based program is to the runtime what the instruction window is to a
// superscalar core, with the TDG playing the role of the dependence graph.
//
// The package provides construction, validation, topological traversal,
// critical-path analysis and the bottom-level criticality metric used by the
// criticality-aware scheduler of Section 3.1 (critical tasks → fast cores).
package tdg

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a task within one graph.
type NodeID int

// Node is one task in the graph.
type Node struct {
	ID NodeID
	// Name is a human-readable label (kernel name, loop indices…).
	Name string
	// Cost is the task's execution weight in abstract work units (cycles
	// at nominal frequency for the simulated executor).
	Cost float64
	// Priority is an optional programmer-provided criticality hint, as
	// OmpSs' priority clause provides.
	Priority int

	succs []NodeID
	preds []NodeID
}

// Succs returns the IDs of the node's successors.
func (n *Node) Succs() []NodeID { return n.succs }

// Preds returns the IDs of the node's predecessors.
func (n *Node) Preds() []NodeID { return n.preds }

// Graph is a directed acyclic graph of tasks.
type Graph struct {
	nodes []*Node
}

// New creates an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a task and returns its ID.
func (g *Graph) AddNode(name string, cost float64) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, &Node{ID: id, Name: name, Cost: cost})
	return id
}

// AddEdge records that task to depends on task from (from → to).
// Duplicate edges are ignored.
func (g *Graph) AddEdge(from, to NodeID) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("tdg: edge %d->%d references unknown node", from, to)
	}
	if from == to {
		return fmt.Errorf("tdg: self edge on node %d", from)
	}
	for _, s := range g.nodes[from].succs {
		if s == to {
			return nil
		}
	}
	g.nodes[from].succs = append(g.nodes[from].succs, to)
	g.nodes[to].preds = append(g.nodes[to].preds, from)
	return nil
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Roots returns the IDs of nodes without predecessors.
func (g *Graph) Roots() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if len(n.preds) == 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// TopoOrder returns a topological ordering, or an error if the graph has a
// cycle (which means dependence construction was buggy).
func (g *Graph) TopoOrder() ([]NodeID, error) {
	indeg := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n.ID] = len(n.preds)
	}
	queue := g.Roots()
	order := make([]NodeID, 0, len(g.nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range g.nodes[id].succs {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("tdg: graph has a cycle (%d of %d nodes ordered)", len(order), len(g.nodes))
	}
	return order, nil
}

// BottomLevels returns, for every node, the length of the longest cost path
// from the node to any sink, including the node's own cost. This is the
// classic "bottom level" criticality metric: the higher, the more critical.
func (g *Graph) BottomLevels() ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, len(g.nodes))
	for i := len(order) - 1; i >= 0; i-- {
		n := g.nodes[order[i]]
		var maxSucc float64
		for _, s := range n.succs {
			if bl[s] > maxSucc {
				maxSucc = bl[s]
			}
		}
		bl[n.ID] = n.Cost + maxSucc
	}
	return bl, nil
}

// CriticalPath returns the node sequence of one longest path and its total
// cost. Ties are broken toward lower node IDs for determinism.
func (g *Graph) CriticalPath() ([]NodeID, float64, error) {
	bl, err := g.BottomLevels()
	if err != nil {
		return nil, 0, err
	}
	// Start at the root (or any node) with the maximal bottom level.
	best := NodeID(-1)
	var bestBL float64
	for _, n := range g.nodes {
		if best == -1 || bl[n.ID] > bestBL {
			best, bestBL = n.ID, bl[n.ID]
		}
	}
	if best == -1 {
		return nil, 0, nil
	}
	var path []NodeID
	cur := best
	for {
		path = append(path, cur)
		next := NodeID(-1)
		var nextBL float64
		for _, s := range g.nodes[cur].succs {
			if next == -1 || bl[s] > nextBL {
				next, nextBL = s, bl[s]
			}
		}
		if next == -1 {
			break
		}
		cur = next
	}
	return path, bestBL, nil
}

// TotalCost returns the sum of node costs (the serial execution time).
func (g *Graph) TotalCost() float64 {
	var s float64
	for _, n := range g.nodes {
		s += n.Cost
	}
	return s
}

// MaxParallelism returns TotalCost / CriticalPath cost, the average width of
// the graph — an upper bound on useful cores.
func (g *Graph) MaxParallelism() (float64, error) {
	_, cp, err := g.CriticalPath()
	if err != nil {
		return 0, err
	}
	if cp == 0 {
		return 0, nil
	}
	return g.TotalCost() / cp, nil
}

// MarkCritical returns a boolean per node: true if the node lies on a path
// whose length is within (1-slack) of the critical path. slack 0 marks only
// exact critical-path nodes; slack 0.1 also marks near-critical tasks,
// which is what the criticality-aware scheduler accelerates.
func (g *Graph) MarkCritical(slack float64) ([]bool, error) {
	bl, err := g.BottomLevels()
	if err != nil {
		return nil, err
	}
	tl, err := g.topLevels()
	if err != nil {
		return nil, err
	}
	_, cp, err := g.CriticalPath()
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(g.nodes))
	// The epsilon absorbs float summation-order noise so exact critical
	// nodes are never dropped by a rounding ulp.
	threshold := cp*(1-slack) - 1e-9*(1+cp)
	for i := range g.nodes {
		// A node's longest through-path = top level + bottom level.
		if tl[i]+bl[i] >= threshold {
			out[i] = true
		}
	}
	return out, nil
}

// ThroughPaths returns, per node, the length of the longest path passing
// through it (top level + bottom level). Nodes whose through-path is far
// below the critical path have slack: they can be slowed without delaying
// the computation — the basis of the DVFS tiering in package simexec.
func (g *Graph) ThroughPaths() ([]float64, error) {
	bl, err := g.BottomLevels()
	if err != nil {
		return nil, err
	}
	tl, err := g.topLevels()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(g.nodes))
	for i := range out {
		out[i] = tl[i] + bl[i]
	}
	return out, nil
}

// topLevels returns the longest cost path from any root to each node,
// excluding the node's own cost.
func (g *Graph) topLevels() ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	tl := make([]float64, len(g.nodes))
	for _, id := range order {
		n := g.nodes[id]
		for _, s := range n.succs {
			if v := tl[id] + n.Cost; v > tl[s] {
				tl[s] = v
			}
		}
	}
	return tl, nil
}

// DOT renders the graph in Graphviz format, critical-path nodes filled.
func (g *Graph) DOT(name string) string {
	critical, err := g.MarkCritical(0)
	if err != nil {
		critical = make([]bool, len(g.nodes))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, n := range g.nodes {
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%s\\n%.0f", n.Name, n.Cost))
		if critical[n.ID] {
			attrs += ", style=filled, fillcolor=lightcoral"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attrs)
	}
	for _, n := range g.nodes {
		succs := append([]NodeID(nil), n.succs...)
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, s := range succs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.ID, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
