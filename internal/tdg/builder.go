package tdg

import "sync"

// Builder accumulates a graph safely from concurrent goroutines and hands
// the finished Graph off once construction is complete. Graph itself is
// deliberately unsynchronised (analysis passes want lock-free reads), so
// concurrent producers — runtime shards exporting their task logs,
// parallel generators — go through a Builder and call Graph exactly once
// when every producer is done.
type Builder struct {
	mu sync.Mutex
	g  *Graph
	// bad records the first AddEdge error, surfaced by Err: builders are
	// used from goroutines where returning an error per edge is awkward.
	bad error
}

// NewBuilder creates an empty builder.
func NewBuilder() *Builder { return &Builder{g: New()} }

// AddNode appends a task and returns its ID. Safe for concurrent use.
func (b *Builder) AddNode(name string, cost float64) NodeID {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.g.AddNode(name, cost)
}

// AddEdge records a dependence from → to. Safe for concurrent use; both
// ends must already have been added. The first failure is kept for Err.
func (b *Builder) AddEdge(from, to NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.g.AddEdge(from, to); err != nil && b.bad == nil {
		b.bad = err
	}
}

// Len returns the number of nodes added so far.
func (b *Builder) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.g.Len()
}

// Err returns the first edge-registration error, nil if none.
func (b *Builder) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bad
}

// Graph hands the built graph off. The builder must not be used after —
// the returned Graph is the builder's own, not a copy.
func (b *Builder) Graph() *Graph {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.g
	b.g = New()
	return g
}
