package tdg

import (
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds a -> {b, c} -> d with the given costs.
func diamond(ca, cb, cc, cd float64) *Graph {
	g := New()
	a := g.AddNode("a", ca)
	b := g.AddNode("b", cb)
	c := g.AddNode("c", cc)
	d := g.AddNode("d", cd)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.AddNode("a", 1)
	if err := g.AddEdge(a, a); err == nil {
		t.Fatalf("self edge must fail")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Fatalf("unknown node must fail")
	}
	b := g.AddNode("b", 1)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	// Duplicate edges are idempotent.
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if len(g.Node(a).Succs()) != 1 || len(g.Node(b).Preds()) != 1 {
		t.Fatalf("duplicate edge must not double-count")
	}
}

func TestRootsAndTopo(t *testing.T) {
	g := diamond(1, 2, 3, 4)
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("roots = %v", roots)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, n := range g.Nodes() {
		for _, s := range n.Succs() {
			if pos[n.ID] >= pos[s] {
				t.Fatalf("topo violated: %d before %d", s, n.ID)
			}
		}
	}
}

func TestCycleDetected(t *testing.T) {
	g := New()
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatalf("cycle must be detected")
	}
	if _, err := g.BottomLevels(); err == nil {
		t.Fatalf("bottom levels on cyclic graph must fail")
	}
}

func TestBottomLevelsDiamond(t *testing.T) {
	g := diamond(1, 2, 3, 4)
	bl, err := g.BottomLevels()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{8, 6, 7, 4} // a: 1+max(6,7)=8, b: 2+4, c: 3+4, d: 4
	for i, w := range want {
		if bl[i] != w {
			t.Fatalf("bl[%d] = %v, want %v", i, bl[i], w)
		}
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g := diamond(1, 2, 3, 4)
	path, cost, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 8 {
		t.Fatalf("critical path cost = %v, want 8", cost)
	}
	want := []NodeID{0, 2, 3} // a -> c -> d
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestMarkCritical(t *testing.T) {
	g := diamond(1, 2, 3, 4)
	crit, err := g.MarkCritical(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, true}
	for i := range want {
		if crit[i] != want[i] {
			t.Fatalf("crit = %v, want %v", crit, want)
		}
	}
	// With enough slack, everything is critical (b's through-path is 7 >= 8*(1-0.2)).
	crit, _ = g.MarkCritical(0.2)
	for i, c := range crit {
		if !c {
			t.Fatalf("node %d should be near-critical with slack", i)
		}
	}
}

func TestParallelismMetrics(t *testing.T) {
	g := Embarrassing(10, 5)
	mp, err := g.MaxParallelism()
	if err != nil {
		t.Fatal(err)
	}
	if mp != 10 {
		t.Fatalf("embarrassing parallelism = %v, want 10", mp)
	}
	c := Chain(10, 5)
	mp, _ = c.MaxParallelism()
	if mp != 1 {
		t.Fatalf("chain parallelism = %v, want 1", mp)
	}
}

func TestCholeskyStructure(t *testing.T) {
	g := Cholesky(4, 100)
	// Node count for n=4: sum over k of 1 + (n-k-1) + T(n-k-1) where T is
	// the triangular count: k=0: 1+3+6, k=1: 1+2+3, k=2: 1+1+1, k=3: 1.
	if g.Len() != 10+6+3+1 {
		t.Fatalf("cholesky(4) nodes = %d, want 20", g.Len())
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	// The first potrf must start the graph; the last potrf must end it.
	roots := g.Roots()
	if len(roots) != 1 || g.Node(roots[0]).Name != "potrf(0)" {
		t.Fatalf("cholesky must start at potrf(0), roots=%v", roots)
	}
	_, cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp <= 0 || cp >= g.TotalCost() {
		t.Fatalf("critical path %v out of range (total %v)", cp, g.TotalCost())
	}
}

func TestForkJoin(t *testing.T) {
	g := ForkJoin(3, 4, 10)
	if g.Len() != 3*(4+1) {
		t.Fatalf("forkjoin nodes = %d", g.Len())
	}
	mp, err := g.MaxParallelism()
	if err != nil {
		t.Fatal(err)
	}
	if mp <= 1 || mp > 4 {
		t.Fatalf("forkjoin parallelism = %v, want in (1,4]", mp)
	}
}

func TestDOT(t *testing.T) {
	g := diamond(1, 2, 3, 4)
	dot := g.DOT("d")
	for _, want := range []string{"digraph", "n0 -> n1", "n2 -> n3", "lightcoral"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// Property: for random DAGs, the critical path cost is at least the maximum
// node cost and at most the total cost, and bottom levels are monotone along
// edges (bl[pred] > bl[succ]).
func TestQuickCriticalPathBounds(t *testing.T) {
	f := func(seed int64, l, w uint8) bool {
		layers := int(l%5) + 1
		width := int(w%5) + 1
		g := RandomDAG(layers, width, seed)
		bl, err := g.BottomLevels()
		if err != nil {
			return false
		}
		for _, n := range g.Nodes() {
			for _, s := range n.Succs() {
				if bl[n.ID] <= bl[s] {
					return false
				}
			}
		}
		_, cp, err := g.CriticalPath()
		if err != nil {
			return false
		}
		var maxCost float64
		for _, n := range g.Nodes() {
			if n.Cost > maxCost {
				maxCost = n.Cost
			}
		}
		return cp >= maxCost-1e-9 && cp <= g.TotalCost()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: critical-path nodes with zero slack always include the ends of
// the reported critical path.
func TestQuickCriticalMarkIncludesPath(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomDAG(4, 4, seed)
		path, _, err := g.CriticalPath()
		if err != nil {
			return false
		}
		crit, err := g.MarkCritical(0)
		if err != nil {
			return false
		}
		for _, id := range path {
			if !crit[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
