package tdg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// depOp is one entry of a random dependence stream: task i declares mode
// access to key.
type depOp struct {
	key  int
	mode int // 0 in, 1 out, 2 inout
}

// buildFromStream constructs the graph a correct RAW/WAR/WAW renamer must
// produce for a stream of single-dependence tasks — the reference
// semantics the runtime's tracker implements.
func buildFromStream(costs []float64, stream []depOp) *Graph {
	g := New()
	lastWriter := map[int]NodeID{}
	readers := map[int][]NodeID{}
	for i, op := range stream {
		id := g.AddNode(fmt.Sprintf("t%d", i), costs[i])
		switch op.mode {
		case 0: // in: RAW from last writer
			if w, ok := lastWriter[op.key]; ok {
				g.AddEdge(w, id)
			}
			readers[op.key] = append(readers[op.key], id)
		default: // out/inout: WAR from readers, WAW from last writer
			if w, ok := lastWriter[op.key]; ok {
				g.AddEdge(w, id)
			}
			for _, r := range readers[op.key] {
				g.AddEdge(r, id)
			}
			lastWriter[op.key] = id
			readers[op.key] = nil
		}
	}
	return g
}

// randomStream generates a reproducible dependence stream.
func randomStream(rng *rand.Rand, n, keys int) ([]float64, []depOp) {
	costs := make([]float64, n)
	stream := make([]depOp, n)
	for i := range stream {
		costs[i] = 1 + rng.Float64()*9 // strictly positive
		stream[i] = depOp{key: rng.Intn(keys), mode: rng.Intn(3)}
	}
	return costs, stream
}

// checkGraphProperties asserts the three invariants every dependence graph
// must satisfy: acyclicity, topological order consistent with all edges,
// and bottom levels strictly decreasing along edges (for positive costs).
func checkGraphProperties(t *testing.T, g *Graph) {
	t.Helper()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("graph has a cycle: %v", err)
	}
	if len(order) != g.Len() {
		t.Fatalf("topo order covers %d of %d nodes", len(order), g.Len())
	}
	pos := make([]int, g.Len())
	for i, id := range order {
		pos[id] = i
	}
	bl, err := g.BottomLevels()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		for _, s := range n.Succs() {
			if pos[n.ID] >= pos[s] {
				t.Fatalf("topo order violates edge %d->%d (pos %d >= %d)", n.ID, s, pos[n.ID], pos[s])
			}
			// bl[u] = cost(u) + max over succ bl — so along every edge the
			// bottom level must drop by at least cost(u) > 0.
			if bl[n.ID] < n.Cost+bl[s]-1e-9 {
				t.Fatalf("bottom level not monotone along %d->%d: bl[u]=%g < cost %g + bl[v]=%g",
					n.ID, s, bl[n.ID], n.Cost, bl[s])
			}
			if bl[n.ID] <= bl[s] {
				t.Fatalf("bottom level not strictly decreasing along %d->%d: %g <= %g", n.ID, s, bl[n.ID], bl[s])
			}
		}
		// Edge symmetry: every succ edge has a matching pred entry.
		for _, s := range n.Succs() {
			found := false
			for _, p := range g.Node(s).Preds() {
				if p == n.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from %d's preds", n.ID, s, s)
			}
		}
	}
}

// Property: for random RAW/WAR/WAW dependence streams the built graph is
// acyclic, topologically consistent, and bottom-level monotone.
func TestPropertyRandomDepStreams(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(190)
		keys := 1 + rng.Intn(12)
		costs, stream := randomStream(rng, n, keys)
		g := buildFromStream(costs, stream)
		checkGraphProperties(t, g)
	}
}

// Property: dependence-stream construction is deterministic — the same
// stream always yields an identical graph (edge sets included).
func TestPropertyDepStreamDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	costs, stream := randomStream(rng, 150, 6)
	a := buildFromStream(costs, stream)
	b := buildFromStream(costs, stream)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for _, n := range a.Nodes() {
		sa, sb := n.Succs(), b.Node(n.ID).Succs()
		if len(sa) != len(sb) {
			t.Fatalf("node %d: succ counts differ (%v vs %v)", n.ID, sa, sb)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("node %d: succ order differs (%v vs %v)", n.ID, sa, sb)
			}
		}
	}
}

// Property: within a key, a reader is ordered after the last writer and
// before the next writer (the renaming contract the stream construction
// must encode).
func TestPropertyReaderWindowOrdering(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		costs, stream := randomStream(rng, 120, 4)
		g := buildFromStream(costs, stream)
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		pos := make([]int, g.Len())
		for i, id := range order {
			pos[id] = i
		}
		lastWriter := map[int]int{} // key -> node index
		readers := map[int][]int{}
		for i, op := range stream {
			switch op.mode {
			case 0:
				if w, ok := lastWriter[op.key]; ok && pos[w] >= pos[i] {
					t.Fatalf("seed %d: reader %d not after writer %d on key %d", seed, i, w, op.key)
				}
				readers[op.key] = append(readers[op.key], i)
			default:
				for _, r := range readers[op.key] {
					if pos[r] >= pos[i] {
						t.Fatalf("seed %d: writer %d not after reader %d on key %d", seed, i, r, op.key)
					}
				}
				if w, ok := lastWriter[op.key]; ok && pos[w] >= pos[i] {
					t.Fatalf("seed %d: writer %d not after writer %d on key %d", seed, i, w, op.key)
				}
				lastWriter[op.key] = i
				readers[op.key] = nil
			}
		}
	}
}

// The named generators must all satisfy the same invariants.
func TestPropertyGenerators(t *testing.T) {
	checkGraphProperties(t, Cholesky(6, 1))
	checkGraphProperties(t, Chain(64, 2))
	checkGraphProperties(t, Embarrassing(64, 1))
	checkGraphProperties(t, ForkJoin(5, 8, 10))
	for seed := int64(0); seed < 10; seed++ {
		checkGraphProperties(t, RandomDAG(6, 8, seed))
	}
}

// Builder: concurrent node/edge registration must be safe and the handed-
// off graph must satisfy every structural invariant. Run with -race.
func TestBuilderConcurrent(t *testing.T) {
	b := NewBuilder()
	const producers = 8
	const perProducer = 50
	ids := make([][]NodeID, producers)
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			ids[p] = make([]NodeID, perProducer)
			for i := 0; i < perProducer; i++ {
				ids[p][i] = b.AddNode(fmt.Sprintf("p%d.%d", p, i), float64(1+i%7))
			}
			// Chain each producer's own nodes: edges only ever go from an
			// earlier to a later AddNode, so the result stays acyclic.
			for i := 1; i < perProducer; i++ {
				b.AddEdge(ids[p][i-1], ids[p][i])
			}
		}(p)
	}
	wg.Wait()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != producers*perProducer {
		t.Fatalf("builder has %d nodes, want %d", b.Len(), producers*perProducer)
	}
	g := b.Graph()
	checkGraphProperties(t, g)
	if g.Len() != producers*perProducer {
		t.Fatalf("graph has %d nodes, want %d", g.Len(), producers*perProducer)
	}
}

func TestBuilderBadEdgeSurfaces(t *testing.T) {
	b := NewBuilder()
	n := b.AddNode("only", 1)
	b.AddEdge(n, NodeID(99))
	if b.Err() == nil {
		t.Fatal("edge to unknown node must surface through Err")
	}
}
