package tdg

import (
	"fmt"
	"math/rand"
)

// Cholesky builds the TDG of a blocked (tiled) Cholesky factorisation over
// an n×n matrix of blocks — the canonical heterogeneous task graph of the
// OmpSs literature and the workload class behind the paper's Section 3.1
// evaluation. Task kinds and their relative costs:
//
//	potrf  diagonal factorisation   (cost 1×)
//	trsm   triangular solve         (cost 2×)
//	syrk   symmetric rank-k update  (cost 2×)
//	gemm   matrix multiply          (cost 3×)
//
// unitCost scales all of them.
func Cholesky(n int, unitCost float64) *Graph {
	g := New()
	// writer[i][j] is the last task that wrote block (i,j).
	writer := make([][]NodeID, n)
	for i := range writer {
		writer[i] = make([]NodeID, n)
		for j := range writer[i] {
			writer[i][j] = -1
		}
	}
	dep := func(task NodeID, i, j int) {
		if w := writer[i][j]; w >= 0 && w != task {
			g.AddEdge(w, task)
		}
	}
	for k := 0; k < n; k++ {
		potrf := g.AddNode(fmt.Sprintf("potrf(%d)", k), 1*unitCost)
		dep(potrf, k, k)
		writer[k][k] = potrf
		for i := k + 1; i < n; i++ {
			trsm := g.AddNode(fmt.Sprintf("trsm(%d,%d)", i, k), 2*unitCost)
			dep(trsm, k, k)
			dep(trsm, i, k)
			writer[i][k] = trsm
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j <= i; j++ {
				if i == j {
					syrk := g.AddNode(fmt.Sprintf("syrk(%d,%d)", i, k), 2*unitCost)
					dep(syrk, i, k)
					dep(syrk, i, i)
					writer[i][i] = syrk
				} else {
					gemm := g.AddNode(fmt.Sprintf("gemm(%d,%d,%d)", i, j, k), 3*unitCost)
					dep(gemm, i, k)
					dep(gemm, j, k)
					dep(gemm, i, j)
					writer[i][j] = gemm
				}
			}
		}
	}
	return g
}

// Chain builds a linear dependence chain of n tasks (worst-case graph: no
// parallelism, everything critical).
func Chain(n int, cost float64) *Graph {
	g := New()
	var prev NodeID = -1
	for i := 0; i < n; i++ {
		id := g.AddNode(fmt.Sprintf("t%d", i), cost)
		if prev >= 0 {
			g.AddEdge(prev, id)
		}
		prev = id
	}
	return g
}

// Embarrassing builds n independent tasks (best-case graph).
func Embarrassing(n int, cost float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("t%d", i), cost)
	}
	return g
}

// ForkJoin builds levels of width-wide fork-join stages, the structure of a
// barrier-based data-parallel code.
func ForkJoin(levels, width int, cost float64) *Graph {
	g := New()
	var barrier NodeID = -1
	for l := 0; l < levels; l++ {
		join := NodeID(-1)
		ids := make([]NodeID, width)
		for w := 0; w < width; w++ {
			ids[w] = g.AddNode(fmt.Sprintf("w%d.%d", l, w), cost)
			if barrier >= 0 {
				g.AddEdge(barrier, ids[w])
			}
		}
		join = g.AddNode(fmt.Sprintf("join%d", l), cost/10)
		for _, id := range ids {
			g.AddEdge(id, join)
		}
		barrier = join
	}
	return g
}

// RandomDAG builds a random layered DAG for property tests: nodes in later
// layers depend on random subsets of earlier layers. Deterministic per seed.
func RandomDAG(layers, width int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	var prev []NodeID
	for l := 0; l < layers; l++ {
		var cur []NodeID
		for w := 0; w < width; w++ {
			id := g.AddNode(fmt.Sprintf("n%d.%d", l, w), 1+rng.Float64()*9)
			for _, p := range prev {
				if rng.Intn(3) == 0 {
					g.AddEdge(p, id)
				}
			}
			cur = append(cur, id)
		}
		prev = cur
	}
	return g
}
