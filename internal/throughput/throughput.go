// Package throughput measures the runtime's scalability on both halves of
// the task path: the rate at which the sharded dependence tracker can
// rename tasks (submit side) and the rate at which the scheduler layer can
// dispatch them (worker side), swept over dependence scenario × scheduler ×
// shard count × submission mode (per-task Submit vs SubmitBatch). shards=1
// reproduces the old single-lock renamer as a built-in baseline; the fifo
// scheduler plays the same role for the lock-free work-stealing dispatch
// (the steal scenario is built to separate the two), the longrun scenario
// exercises the steady state of a long-lived service, and the hetero
// scenario runs a critical chain with fanout on an asymmetric
// (fast+slow-class) pool to separate criticality-aware placement (cats)
// from class-blind scheduling — slow workers simulate their speed deficit
// by spinning proportionally longer, and each cell reports which class ran
// the chain (Point.CritOnFast).
package throughput

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/runtime"
)

// Scenario names understood by Run.
const (
	// ScenarioParallel submits dependence-free tasks: pure tracker and
	// scheduler overhead, the embarrassingly-parallel best case.
	ScenarioParallel = "parallel"
	// ScenarioFanOut submits one writer and N-1 readers of a single key:
	// every registration contends on one shard.
	ScenarioFanOut = "fanout"
	// ScenarioChain submits an inout chain on one key: worst case, the
	// tracker serialises and so does execution.
	ScenarioChain = "chain"
	// ScenarioRandom submits tasks with 1–3 random-mode dependences over
	// a configurable key space: the general random-DAG case, exercising
	// multi-shard lock ordering.
	ScenarioRandom = "random"
	// ScenarioSteal is dispatch-side pressure: tasks come in small groups
	// of one root plus stealFan children reading it, so each root's
	// completion releases a whole fan onto the completing worker's local
	// queue at once — the other workers must steal to share the load. This
	// is the scenario the lock-free deque path is built for; a central
	// single-lock scheduler serialises every one of those pops.
	ScenarioSteal = "steal"
	// ScenarioLongRun is the long-lived-service shape: the same runtime
	// serves many submit→Wait rounds in sequence. It measures sustained
	// dispatch rate after the pool has drained and re-parked repeatedly
	// (and, with the default no-trace-retention lifecycle, runs at bounded
	// memory however many rounds pass).
	ScenarioLongRun = "longrun"
	// ScenarioHetero is criticality-aware placement on an asymmetric
	// pool: a priority-hinted critical chain with a fan of plain tasks
	// hanging off every link, run on a fast class plus a slow class whose
	// workers simulate their speed deficit by spinning SlowFactor times
	// longer per task. The chain is the makespan: cats keeps it on the
	// fast class (Point.CritOnFast ≈ 1) while class-blind fifo/worksteal
	// let slow workers pick chain links up and stretch the critical path.
	// Submission is single-producer so the chain's program order is
	// deterministic.
	ScenarioHetero = "hetero"
	// ScenarioLocality is the producer→consumer cache-affinity workload:
	// one serialized chain per worker, each link re-touching its chain's
	// cache-sized payload. When a link completes on worker W its successor
	// is released W-locally (the locality window), so the consumer reads
	// the payload out of the producer's still-warm cache; with the window
	// disabled every release detours through the shared injector and the
	// payload bounces between workers. The scenario is swept over the
	// locality-window axis (Config.Windows, default off-vs-default), and
	// the on/off cells are measured as drift-cancelling paired rounds
	// (Point.Speedup is the median of per-round ratios) rather than two
	// back-to-back runs, so machine drift between cells cancels out.
	ScenarioLocality = "locality"
	// ScenarioTopology is the memory-hierarchy placement workload: the
	// locality chain shape run on a pool split into Config.Domains memory
	// domains (WithTopology) versus the same pool flattened into a single
	// domain (the domain-blind baseline). The domain-aware variant routes
	// successor spill, steals, and injection domain-first; the paired
	// measurement reports its speedup over the flat baseline and the
	// fraction of its dispatches that crossed a domain boundary
	// (Point.CrossDomainFrac) — cross-domain traffic is the first-class
	// metric, not just the rate.
	ScenarioTopology = "topology"
	// ScenarioAdaptive is the phase-shifting workload the adaptive
	// controller is built for, run on an asymmetric (fast+slow-class) pool:
	// legs alternate serial chain segments (InOut links with speed-scaled
	// bodies and no priority hints, so no static scheduler gets placement
	// help) with wide fan bursts and short idle gaps. No single static
	// configuration fits both phases — chains want the slow class parked so
	// links stop landing on workers that hold them SlowFactor× longer, fans
	// want the whole pool — so the scenario compares static arms (worksteal
	// with and without locality, cats) against worksteal+WithAdaptive as
	// drift-cancelling paired rounds. The adaptive arm's Point.Speedup is
	// the minimum over the static arms of the median per-round ratio: > 1
	// means adaptation beat every static setting, not just the weakest.
	// Unlike the other scenarios this one does not sweep the scheduler
	// axis — the scheduler configurations are its arms.
	ScenarioAdaptive = "adaptive"
	// ScenarioChaos is throughput under faults: the same retry- and
	// deadline-configured workload runs twice per paired round — a clean
	// arm (no injector) against a faulty arm whose bodies are wrapped by a
	// seeded chaos injector making a deterministic ~4% of them panic, fail,
	// or stall. The faulty arm's Point carries ChaosOverhead (median of
	// per-round faulty/clean elapsed ratios — the price of recovery under
	// an active fault load) and ChaosSurvival (the fraction of submitted
	// tasks that reached exactly one terminal state — 1.0 is the only
	// acceptable verdict, and the leg errors out on any lost task). The
	// clean arm doubles as the recovery-machinery-idle baseline: its
	// tasks carry the same retry policies and deadlines, unexercised.
	ScenarioChaos = "chaos"
)

// stealFan is the children-per-root fan-out of ScenarioSteal.
const stealFan = 15

// stealKey identifies one ScenarioSteal group's root datum. An int64 key
// (producer in the high bits, group in the low) takes the tracker's inline
// integer-hash path, keeping the scenario a dispatch-side measurement
// instead of a key-hashing one — int64 so the shift is sound on 32-bit
// platforms too.
func stealKey(producer, group int) int64 {
	return int64(producer)<<32 | int64(group)
}

// defaultRounds is the round count of ScenarioLongRun when Config.Rounds
// is unset.
const defaultRounds = 8

// heteroFan is the plain tasks hanging off each chain link of
// ScenarioHetero.
const heteroFan = 7

// Hetero-pool defaults used when the Config fields are unset.
const (
	defaultSlowFactor  = 4
	defaultHeteroGrain = 256
)

// defaultPayloadKB is ScenarioLocality's and ScenarioTopology's per-chain
// payload size when Config.PayloadKB is unset: 32 KiB, the canonical L1d
// size, so a link that runs on its producer's core finds the whole payload
// resident.
const defaultPayloadKB = 32

// Paired-measurement defaults (ScenarioLocality and ScenarioTopology).
const (
	// defaultPairRounds is the paired-round count when Config.PairRounds is
	// unset: each round runs every variant twice in palindrome order, and
	// the reported speedup is the median of the per-round ratios — three
	// rounds is the smallest count with a non-trivial median.
	defaultPairRounds = 3
	// defaultTopologyDomains is ScenarioTopology's domain count when
	// Config.Domains is unset.
	defaultTopologyDomains = 2
)

// ScenarioChaos's fault schedule and fault-tolerance knobs. The rates sum
// to 4% of bodies faulted; the stall is longer than the deadline some
// tasks carry, so all three failure classes (panic, error, deadline
// overrun) fire in every faulty leg.
const (
	chaosPanicRate   = 0.01
	chaosErrorRate   = 0.02
	chaosDelayRate   = 0.01
	chaosStickyRate  = 0.25
	chaosDelayStall  = 200 * time.Microsecond
	chaosDeadline    = 100 * time.Microsecond
	chaosRetryMax    = 2
	chaosBackoff     = 50 * time.Microsecond
	chaosMaxBackoff  = 500 * time.Microsecond
	chaosChainStride = 4 // every 4th task joins a dependence chain
	chaosDeadlineMod = 4 // every 4th task (offset 1) carries a deadline
)

// Scenarios lists every scenario in presentation order.
func Scenarios() []string {
	return []string{ScenarioParallel, ScenarioFanOut, ScenarioChain, ScenarioRandom, ScenarioSteal, ScenarioLongRun, ScenarioHetero, ScenarioLocality, ScenarioTopology, ScenarioAdaptive, ScenarioChaos}
}

// Config parameterises a sweep.
type Config struct {
	// Scenarios, Schedulers and Shards are the sweep axes.
	Scenarios  []string
	Schedulers []string
	Shards     []int
	// Tasks is the task count per run.
	Tasks int
	// Workers is the pool size.
	Workers int
	// Producers is the number of concurrent submitting goroutines.
	Producers int
	// Batch, when > 1, additionally measures SubmitBatch in chunks of
	// this size alongside the per-task Submit mode.
	Batch int
	// Grain is the spin-work iterations per task body (0 = empty body).
	Grain int
	// Keys is the key-space size for ScenarioRandom.
	Keys int
	// Rounds is the submit→Wait round count for ScenarioLongRun
	// (default 8).
	Rounds int
	// FastWorkers is the fast-class pool size of ScenarioHetero; the
	// remaining Workers form the slow class, and the total always equals
	// Workers (so hetero cells compare against the other scenarios').
	// 0 defaults to a quarter of the pool; the value is clamped to
	// [1, Workers-1] so at least one worker of each class exists
	// (a single-worker pool keeps just the fast class).
	FastWorkers int
	// SlowFactor is ScenarioHetero's simulated asymmetry: slow-class
	// workers spin SlowFactor× the nominal grain per task (their class
	// speed is 1/SlowFactor). 0 defaults to 4.
	SlowFactor float64
	// Windows is ScenarioLocality's sweep axis: the locality-window values
	// to run the scenario under. 0 means the runtime default window,
	// negative disables the worker-local path (the central-injector
	// baseline). Empty defaults to [-1, 0] — locality off vs on. Other
	// scenarios always run at the runtime default.
	Windows []int
	// PayloadKB is ScenarioLocality's and ScenarioTopology's per-chain
	// payload size in KiB (0 = 32, one L1d worth).
	PayloadKB int
	// Domains is ScenarioTopology's memory-domain count for the
	// domain-aware variant (0 = 2); clamped to [1, Workers].
	Domains int
	// PairRounds is the paired-round count of the locality and topology
	// scenarios' drift-cancelling measurement (0 = 3). Each round runs
	// every variant twice, in palindrome order, and the reported speedup
	// is the median of the per-round baseline/variant ratios.
	PairRounds int
	// Seed makes the random-DAG dependence streams reproducible.
	Seed int64
}

// Point is one measured run of the sweep.
type Point struct {
	Scenario  string
	Scheduler string
	// Shards is the resolved shard count the runtime used.
	Shards int
	// Mode is "single" (per-task Submit) or "batch" (SubmitBatch).
	Mode  string
	Tasks int
	// Elapsed covers submission through Wait.
	Elapsed time.Duration
	// TasksPerSec is the headline rate: Tasks / Elapsed.
	TasksPerSec float64
	// Executed is the runtime's executed-task count — a determinism and
	// no-lost-tasks check, independent of wall clock.
	Executed uint64
	// CritOnFast is the fraction of ScenarioHetero's critical-chain tasks
	// that executed on the fast worker class (0 for other scenarios). It
	// is the placement verdict: ≈1 for cats, ≈ the fast class's fair
	// share for class-blind schedulers.
	CritOnFast float64
	// Window is the locality window this cell ran under (ScenarioLocality
	// only): 0 is the runtime default, negative is locality disabled.
	Window int
	// Domains is the memory-domain count this cell ran under
	// (ScenarioTopology only): 1 is the flat domain-blind baseline.
	Domains int
	// Speedup is the drift-cancelled speedup of this cell over its paired
	// baseline (locality-off, or the single-domain topology), reported as
	// the median of per-round ratios. 0 on baseline cells and on scenarios
	// that are not measured in paired rounds.
	Speedup float64
	// CrossDomainFrac is the fraction of this cell's pool-released
	// dispatches that crossed a memory-domain boundary (ScenarioTopology
	// only; 0 by definition on the single-domain baseline).
	CrossDomainFrac float64
	// AdaptiveDecisions is the number of policy changes the adaptive
	// controller applied over this cell's legs (ScenarioAdaptive's adaptive
	// arm only) — the evidence that a reported speedup came from online
	// adaptation rather than a lucky static setting.
	AdaptiveDecisions uint64
	// NsPerTask is the headline latency view of the rate: Elapsed/Tasks in
	// nanoseconds.
	NsPerTask float64
	// Faulty marks ScenarioChaos's injected arm; false on its clean
	// baseline arm (and on every other scenario).
	Faulty bool
	// ChaosOverhead is ScenarioChaos's faulty-arm verdict: the median of
	// per-round faulty/clean elapsed ratios — how much slower the same
	// workload ran with the fault schedule active, recovery included.
	ChaosOverhead float64
	// ChaosSurvival is the fraction of the faulty arm's submitted tasks
	// that reached exactly one terminal state (executed or skipped); the
	// run is only reported at all if the pool stayed alive to the end.
	ChaosSurvival float64
}

// sink defeats dead-code elimination of the spin bodies.
var sink uint64

// Run executes the sweep. Cancellation is observed between runs.
func Run(ctx context.Context, cfg Config) ([]Point, error) {
	if cfg.Tasks <= 0 {
		return nil, fmt.Errorf("throughput: non-positive task count %d", cfg.Tasks)
	}
	if cfg.Workers <= 0 || cfg.Producers <= 0 {
		return nil, fmt.Errorf("throughput: workers (%d) and producers (%d) must be positive", cfg.Workers, cfg.Producers)
	}
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = Scenarios()
	}
	if len(cfg.Schedulers) == 0 {
		cfg.Schedulers = runtime.SchedulerNames()
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 0}
	}
	// Distinct requests can resolve to the same shard count (0 = auto, or
	// clamping) — dedupe on the resolved value so sweep cells and metric
	// keys never silently overwrite each other.
	shardCounts := make([]int, 0, len(cfg.Shards))
	seenShards := map[int]bool{}
	for _, s := range cfg.Shards {
		rs := runtime.ResolveShards(s)
		if !seenShards[rs] {
			seenShards[rs] = true
			shardCounts = append(shardCounts, rs)
		}
	}
	cfg.Shards = shardCounts
	if cfg.Keys <= 0 {
		cfg.Keys = 256
	}
	modes := []string{"single"}
	if cfg.Batch > 1 {
		modes = append(modes, "batch")
	}
	var out []Point
	// One Stats buffer for the whole sweep: finishPoint samples counters
	// through StatsInto, so per-cell reporting reuses these slices.
	var st runtime.Stats
	for _, scenario := range cfg.Scenarios {
		if err := validScenario(scenario); err != nil {
			return nil, err
		}
		// The adaptive scenario's arms are scheduler configurations, so it
		// skips the scheduler axis and runs once per (shards, mode) cell.
		if scenario == ScenarioAdaptive {
			for _, shards := range cfg.Shards {
				for _, mode := range modes {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					ps, err := runAdaptive(ctx, shards, mode, cfg, &st)
					if err != nil {
						return nil, err
					}
					out = append(out, ps...)
				}
			}
			continue
		}
		for _, schedName := range cfg.Schedulers {
			kind, err := runtime.SchedulerByName(schedName)
			if err != nil {
				return nil, fmt.Errorf("throughput: %w", err)
			}
			for _, shards := range cfg.Shards {
				for _, mode := range modes {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					// The locality and topology scenarios compare variants
					// (window off/on, flat/domain-aware) and are measured as
					// drift-cancelling paired rounds producing one Point per
					// variant; every other scenario is a single run.
					if scenario == ScenarioLocality || scenario == ScenarioTopology {
						ps, err := runPaired(ctx, scenario, kind, shards, mode, cfg, &st)
						if err != nil {
							return nil, err
						}
						out = append(out, ps...)
						continue
					}
					// The chaos scenario compares a clean arm against a
					// fault-injected arm, also as paired rounds.
					if scenario == ScenarioChaos {
						ps, err := runChaos(ctx, kind, shards, mode, cfg, &st)
						if err != nil {
							return nil, err
						}
						out = append(out, ps...)
						continue
					}
					p, err := runOne(ctx, scenario, kind, shards, mode, cfg, &st)
					if err != nil {
						return nil, err
					}
					out = append(out, p)
				}
			}
		}
	}
	return out, nil
}

func validScenario(name string) error {
	for _, s := range Scenarios() {
		if s == name {
			return nil
		}
	}
	return fmt.Errorf("throughput: unknown scenario %q (valid: %v)", name, Scenarios())
}

// runOne measures one (scenario, scheduler, shards, mode) cell.
func runOne(ctx context.Context, scenario string, kind runtime.SchedulerKind, shards int, mode string, cfg Config, st *runtime.Stats) (Point, error) {
	if scenario == ScenarioLongRun {
		return runLongRun(ctx, kind, shards, mode, cfg, st)
	}
	if scenario == ScenarioHetero {
		return runHetero(ctx, kind, shards, mode, cfg, st)
	}
	rt := runtime.New(
		runtime.WithWorkers(cfg.Workers),
		runtime.WithScheduler(kind),
		runtime.WithShards(shards),
	)
	body := taskBody(cfg.Grain)

	start := time.Now()
	// ScenarioFanOut's root must be tracked before any reader registers,
	// so it is submitted ahead of the producers.
	submitted := 0
	if scenario == ScenarioFanOut {
		if _, err := rt.SubmitCtx(ctx, "root", 1, body, runtime.Out("fan-root")); err != nil {
			rt.Shutdown()
			return Point{}, err
		}
		submitted++
	}
	if err := submitWave(ctx, rt, scenario, mode, cfg.Tasks-submitted, body, cfg); err != nil {
		rt.Shutdown()
		return Point{}, err
	}
	if err := rt.WaitCtx(ctx); err != nil {
		rt.Shutdown()
		return Point{}, err
	}
	return finishPoint(rt, scenario, kind, mode, cfg, start, st)
}

// submitWave fans n tasks of the scenario out over cfg.Producers concurrent
// goroutines and waits for all submissions to land.
func submitWave(ctx context.Context, rt *runtime.Runtime, scenario, mode string, n int, body runtime.Body, cfg Config) error {
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Producers)
	per := (n + cfg.Producers - 1) / cfg.Producers
	for p := 0; p < cfg.Producers; p++ {
		share := per
		if rem := n - p*per; rem < share {
			share = rem
		}
		if share <= 0 {
			break
		}
		wg.Add(1)
		go func(producer, share int) {
			defer wg.Done()
			errs <- produce(ctx, rt, scenario, mode, producer, share, body, cfg)
		}(p, share)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// finishPoint stops the runtime, audits the executed count against the
// configured task count, and builds the measured Point. The counter
// snapshot goes through StatsInto into the sweep's shared buffer, so the
// per-cell reporting loop allocates nothing.
func finishPoint(rt *runtime.Runtime, scenario string, kind runtime.SchedulerKind, mode string, cfg Config, start time.Time, st *runtime.Stats) (Point, error) {
	elapsed := time.Since(start)
	rt.StatsInto(st)
	resolved := rt.Shards()
	rt.Shutdown()
	if st.Executed != uint64(cfg.Tasks) {
		return Point{}, fmt.Errorf("throughput: %s/%s shards=%d %s lost tasks: executed %d of %d",
			scenario, kind, resolved, mode, st.Executed, cfg.Tasks)
	}
	return Point{
		Scenario:    scenario,
		Scheduler:   kind.String(),
		Shards:      resolved,
		Mode:        mode,
		Tasks:       cfg.Tasks,
		Elapsed:     elapsed,
		TasksPerSec: float64(cfg.Tasks) / elapsed.Seconds(),
		NsPerTask:   float64(elapsed.Nanoseconds()) / float64(cfg.Tasks),
		Executed:    st.Executed,
	}, nil
}

// runLongRun measures the ScenarioLongRun cell: one runtime serves Rounds
// consecutive submit→Wait rounds of dependence-free tasks, so the measured
// rate includes repeated pool drain/park/wake cycles — the steady state of
// a long-lived service, not a one-shot burst.
func runLongRun(ctx context.Context, kind runtime.SchedulerKind, shards int, mode string, cfg Config, st *runtime.Stats) (Point, error) {
	rt := runtime.New(
		runtime.WithWorkers(cfg.Workers),
		runtime.WithScheduler(kind),
		runtime.WithShards(shards),
	)
	body := taskBody(cfg.Grain)
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = defaultRounds
	}
	if rounds > cfg.Tasks {
		rounds = cfg.Tasks
	}

	start := time.Now()
	submitted := 0
	for round := 0; round < rounds; round++ {
		// Spread the remaining tasks evenly over the remaining rounds.
		n := (cfg.Tasks - submitted) / (rounds - round)
		if round == rounds-1 {
			n = cfg.Tasks - submitted
		}
		if err := submitWave(ctx, rt, ScenarioParallel, mode, n, body, cfg); err != nil {
			rt.Shutdown()
			return Point{}, err
		}
		if err := rt.WaitCtx(ctx); err != nil {
			rt.Shutdown()
			return Point{}, err
		}
		submitted += n
	}
	return finishPoint(rt, ScenarioLongRun, kind, mode, cfg, start, st)
}

// heteroPool resolves ScenarioHetero's class split from the Config. The
// pool always totals cfg.Workers so hetero cells stay comparable with the
// other scenarios' cells: FastWorkers is clamped to leave at least one
// slow worker (a single-worker pool degenerates to one fast worker and no
// slow class at all).
func heteroPool(cfg Config) (fast, slow int, factor float64) {
	fast = cfg.FastWorkers
	if fast <= 0 {
		fast = cfg.Workers / 4
	}
	if fast > cfg.Workers-1 {
		fast = cfg.Workers - 1
	}
	if fast < 1 {
		fast = 1
	}
	slow = cfg.Workers - fast
	factor = cfg.SlowFactor
	if factor <= 0 {
		factor = defaultSlowFactor
	}
	return fast, slow, factor
}

// runHetero measures the ScenarioHetero cell: a chain-plus-fanout DAG on a
// heterogeneous pool. Chain links are InOut on one key with a bottom-level
// priority hint (remaining chain length); each link also writes a group
// key that heteroFan plain readers hang off, so slow workers always have
// non-critical work while the chain drains. Task bodies read their
// placement back from the runtime and spin grain/speed iterations — the
// simulated slow-class delay — and chain bodies record which class ran
// them (Point.CritOnFast).
func runHetero(ctx context.Context, kind runtime.SchedulerKind, shards int, mode string, cfg Config, st *runtime.Stats) (Point, error) {
	fast, slow, factor := heteroPool(cfg)
	rt := runtime.New(
		runtime.WithWorkerClasses(
			runtime.WorkerClass{Name: "fast", Count: fast, Speed: 1},
			runtime.WorkerClass{Name: "slow", Count: slow, Speed: 1 / factor},
		),
		runtime.WithScheduler(kind),
		runtime.WithShards(shards),
	)
	grain := cfg.Grain
	if grain <= 0 {
		grain = defaultHeteroGrain
	}
	var critTotal, critOnFast int64
	body := func(ctx context.Context) error {
		speed := 1.0
		if pl, ok := runtime.TaskPlacement(ctx); ok {
			speed = pl.Speed
		}
		x := uint64(grain)
		for i := 0; i < int(float64(grain)/speed); i++ {
			x = x*1664525 + 1013904223
		}
		atomic.AddUint64(&sink, x)
		return nil
	}
	chainBody := func(ctx context.Context) error {
		atomic.AddInt64(&critTotal, 1)
		if pl, ok := runtime.TaskPlacement(ctx); ok && pl.Class == 0 {
			atomic.AddInt64(&critOnFast, 1)
		}
		return body(ctx)
	}
	groups := cfg.Tasks / (heteroFan + 1)
	if groups < 1 {
		groups = 1
	}

	start := time.Now()
	submitted := 0
	for g := 0; g < groups; g++ {
		// The last group absorbs the remainder so exactly cfg.Tasks tasks
		// are submitted whatever the rounding.
		fan := heteroFan
		if g == groups-1 {
			fan = cfg.Tasks - submitted - (groups - g)
		}
		specs := make([]runtime.TaskSpec, 0, fan+1)
		specs = append(specs, runtime.TaskSpec{
			Name: "chain", Cost: 1, Priority: groups - g, Body: chainBody,
			Deps: []runtime.Dep{runtime.InOut("chain"), runtime.Out(int64(g))},
		})
		for f := 0; f < fan; f++ {
			specs = append(specs, runtime.TaskSpec{
				Name: "fan", Cost: 1, Body: body,
				Deps: []runtime.Dep{runtime.In(int64(g))},
			})
		}
		submitted += len(specs)
		if mode == "batch" {
			if _, err := rt.SubmitBatchCtx(ctx, specs); err != nil {
				rt.Shutdown()
				return Point{}, err
			}
			continue
		}
		for _, sp := range specs {
			if _, err := rt.SubmitPriorityCtx(ctx, sp.Name, sp.Cost, sp.Priority, sp.Body, sp.Deps...); err != nil {
				rt.Shutdown()
				return Point{}, err
			}
		}
	}
	if err := rt.WaitCtx(ctx); err != nil {
		rt.Shutdown()
		return Point{}, err
	}
	p, err := finishPoint(rt, ScenarioHetero, kind, mode, cfg, start, st)
	if err != nil {
		return Point{}, err
	}
	if n := atomic.LoadInt64(&critTotal); n > 0 {
		p.CritOnFast = float64(atomic.LoadInt64(&critOnFast)) / float64(n)
	}
	return p, nil
}

// pairedVariant is one arm of a drift-cancelling paired measurement: the
// runtime options the arm runs under, plus the axis identity (locality
// window or domain count) of the Point it produces. Exactly one variant of
// a set is the baseline the others' speedups are taken against.
type pairedVariant struct {
	window   int
	domains  int
	baseline bool
	opts     []runtime.Option
}

// localityVariants builds ScenarioLocality's measurement arms: one per
// configured locality window (default off-vs-on). The baseline is the
// first locality-off (negative) window, or the first window when none is
// disabled.
func localityVariants(kind runtime.SchedulerKind, shards int, cfg Config) []pairedVariant {
	wins := cfg.Windows
	if len(wins) == 0 {
		wins = []int{-1, 0} // locality off vs on
	}
	vs := make([]pairedVariant, 0, len(wins))
	for _, w := range wins {
		opts := []runtime.Option{
			runtime.WithWorkers(cfg.Workers),
			runtime.WithScheduler(kind),
			runtime.WithShards(shards),
		}
		if w != 0 {
			opts = append(opts, runtime.WithLocalityWindow(w))
		}
		vs = append(vs, pairedVariant{window: w, opts: opts})
	}
	base := 0
	for i := range vs {
		if vs[i].window < 0 {
			base = i
			break
		}
	}
	vs[base].baseline = true
	return vs
}

// topologyVariants builds ScenarioTopology's measurement arms: the pool
// flattened into a single memory domain (the domain-blind baseline, in
// which every domain-aware path collapses to the flat behaviour) versus
// the same pool split evenly into cfg.Domains domains.
func topologyVariants(kind runtime.SchedulerKind, shards int, cfg Config) []pairedVariant {
	nd := cfg.Domains
	if nd <= 0 {
		nd = defaultTopologyDomains
	}
	if nd > cfg.Workers {
		nd = cfg.Workers
	}
	doms := make([]runtime.Domain, nd)
	base, extra := cfg.Workers/nd, cfg.Workers%nd
	for i := range doms {
		doms[i].Count = base
		if i < extra {
			doms[i].Count++
		}
	}
	common := func(topo ...runtime.Domain) []runtime.Option {
		return []runtime.Option{
			runtime.WithWorkers(cfg.Workers),
			runtime.WithScheduler(kind),
			runtime.WithShards(shards),
			runtime.WithTopology(topo...),
		}
	}
	return []pairedVariant{
		{domains: 1, baseline: true, opts: common(runtime.Domain{Name: "flat", Count: cfg.Workers})},
		{domains: nd, opts: common(doms...)},
	}
}

// runPaired measures ScenarioLocality's or ScenarioTopology's variants as
// drift-cancelling paired rounds over one (scheduler, shards, mode) cell.
// Each round runs every variant twice — forward then reverse, a palindrome
// — on a fresh runtime per leg, so slow machine drift hits all variants
// symmetrically and cancels in the per-round ratio; the reported Speedup
// is the median of the per-round baseline/variant elapsed ratios, robust
// to the occasional disturbed round that made single-pair measurements
// swing run to run. Points carry the per-variant totals (all legs summed).
func runPaired(ctx context.Context, scenario string, kind runtime.SchedulerKind, shards int, mode string, cfg Config, st *runtime.Stats) ([]Point, error) {
	var variants []pairedVariant
	if scenario == ScenarioTopology {
		variants = topologyVariants(kind, shards, cfg)
	} else {
		variants = localityVariants(kind, shards, cfg)
	}
	baseIdx := 0
	for i := range variants {
		if variants[i].baseline {
			baseIdx = i
		}
	}
	rounds := cfg.PairRounds
	if rounds <= 0 {
		rounds = defaultPairRounds
	}
	// Never spread the workload thinner than one task per leg: tiny task
	// counts shrink the round count instead of producing empty legs.
	if maxRounds := cfg.Tasks / 2; rounds > maxRounds {
		rounds = maxRounds
	}
	if rounds < 1 {
		rounds = 1
	}
	chains := cfg.Workers
	if chains < 1 {
		chains = 1
	}
	payloadKB := cfg.PayloadKB
	if payloadKB <= 0 {
		payloadKB = defaultPayloadKB
	}
	words := payloadKB * 1024 / 8
	// One payload and one reusable body per chain, shared by every leg of
	// every variant so all arms chase identical bytes; the body walks the
	// whole payload, so a link scheduled away from its producer's cache
	// pays the full transfer.
	bodies := make([]runtime.Body, chains)
	for c := 0; c < chains; c++ {
		buf := make([]uint64, words)
		bodies[c] = func(context.Context) error {
			var acc uint64
			for i := range buf {
				buf[i] = buf[i]*1664525 + 1013904223
				acc += buf[i]
			}
			atomic.AddUint64(&sink, acc)
			return nil
		}
	}

	type acc struct {
		elapsed      time.Duration
		roundElapsed time.Duration
		executed     uint64
		dispatched   uint64
		cross        uint64
		ratios       []float64
	}
	accs := make([]acc, len(variants))
	resolved := 0
	runLeg := func(vi, n int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		rt := runtime.New(variants[vi].opts...)
		start := time.Now()
		if err := submitChains(ctx, rt, mode, n, chains, bodies); err != nil {
			rt.Shutdown()
			return err
		}
		if err := rt.WaitCtx(ctx); err != nil {
			rt.Shutdown()
			return err
		}
		el := time.Since(start)
		rt.StatsInto(st)
		resolved = rt.Shards()
		rt.Shutdown()
		if st.Executed != uint64(n) {
			return fmt.Errorf("throughput: %s/%s shards=%d %s lost tasks: executed %d of %d",
				scenario, kind, resolved, mode, st.Executed, n)
		}
		a := &accs[vi]
		a.elapsed += el
		a.roundElapsed += el
		a.executed += st.Executed
		for _, ds := range st.PerDomain {
			a.dispatched += ds.LocalDispatched + ds.CrossDispatched
			a.cross += ds.CrossDispatched
		}
		return nil
	}
	remaining := cfg.Tasks
	for r := 0; r < rounds; r++ {
		// Spread the configured task count exactly over the rounds (every
		// variant executes cfg.Tasks in total) and split each round's share
		// over the variant's two legs.
		roundTasks := remaining / (rounds - r)
		remaining -= roundTasks
		legA := roundTasks / 2
		legB := roundTasks - legA
		for i := range accs {
			accs[i].roundElapsed = 0
		}
		for vi := 0; vi < len(variants); vi++ {
			if err := runLeg(vi, legA); err != nil {
				return nil, err
			}
		}
		for vi := len(variants) - 1; vi >= 0; vi-- {
			if err := runLeg(vi, legB); err != nil {
				return nil, err
			}
		}
		base := accs[baseIdx].roundElapsed
		for vi := range variants {
			if vi == baseIdx || accs[vi].roundElapsed <= 0 {
				continue
			}
			accs[vi].ratios = append(accs[vi].ratios, float64(base)/float64(accs[vi].roundElapsed))
		}
	}

	total := cfg.Tasks
	pts := make([]Point, 0, len(variants))
	for vi, v := range variants {
		a := accs[vi]
		p := Point{
			Scenario:    scenario,
			Scheduler:   kind.String(),
			Shards:      resolved,
			Mode:        mode,
			Tasks:       total,
			Elapsed:     a.elapsed,
			TasksPerSec: float64(total) / a.elapsed.Seconds(),
			NsPerTask:   float64(a.elapsed.Nanoseconds()) / float64(total),
			Executed:    a.executed,
			Window:      v.window,
			Domains:     v.domains,
		}
		if vi != baseIdx {
			p.Speedup = medianOf(a.ratios)
		}
		if scenario == ScenarioTopology && a.dispatched > 0 {
			p.CrossDomainFrac = float64(a.cross) / float64(a.dispatched)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// ScenarioAdaptive's phase shape: each segment pair is one serial chain of
// adaptiveChainLinks speed-scaled links followed by a fan burst of
// 2×Workers fixed-grain tasks, with an adaptiveIdleGap pause after each
// pair (and one before the first) — the quiet beat in which the adaptive
// arm's controller observes the phase and retunes before the next segment
// starts.
const (
	adaptiveChainLinks = 64
	adaptiveIdleGap    = 500 * time.Microsecond
	// defaultAdaptiveGrain is the per-link spin grain when Config.Grain is
	// unset: heavy enough that a chain segment's wall time dwarfs
	// submission and hand-off overhead, so the measured ratio is placement,
	// not bookkeeping.
	defaultAdaptiveGrain = 8192
	// The adaptive arm's controller settings: a tight sampling period and
	// minimum hysteresis, so a phase is recognised within the idle gap
	// separating two segments.
	adaptivePeriod     = 100 * time.Microsecond
	adaptiveHysteresis = 1
)

// adaptiveArm is one arm of ScenarioAdaptive: a full scheduler
// configuration (the arms ARE the comparison axis) identified by the name
// reported in Point.Scheduler.
type adaptiveArm struct {
	name     string
	adaptive bool
	opts     []runtime.Option
}

// adaptiveArms builds the scenario's arms on the hetero pool: the static
// configurations a tuner could have frozen — worksteal as shipped,
// worksteal with the locality window off, and cats — against worksteal
// under adaptive control.
func adaptiveArms(shards int, cfg Config) []adaptiveArm {
	fast, slow, factor := heteroPool(cfg)
	common := func(extra ...runtime.Option) []runtime.Option {
		return append([]runtime.Option{
			runtime.WithWorkerClasses(
				runtime.WorkerClass{Name: "fast", Count: fast, Speed: 1},
				runtime.WorkerClass{Name: "slow", Count: slow, Speed: 1 / factor},
			),
			runtime.WithShards(shards),
		}, extra...)
	}
	return []adaptiveArm{
		{name: "worksteal", opts: common(runtime.WithScheduler(runtime.WorkSteal))},
		{name: "worksteal-nolocal", opts: common(runtime.WithScheduler(runtime.WorkSteal), runtime.WithLocalityWindow(-1))},
		{name: "cats", opts: common(runtime.WithScheduler(runtime.CATS))},
		{name: "adaptive", adaptive: true, opts: common(
			runtime.WithScheduler(runtime.WorkSteal),
			runtime.WithAdaptive(runtime.AdaptiveOptions{Period: adaptivePeriod, Hysteresis: adaptiveHysteresis}),
		)},
	}
}

// runAdaptive measures ScenarioAdaptive over one (shards, mode) cell as
// drift-cancelling paired rounds (palindrome legs, like runPaired): every
// arm executes the same phase-shifting workload, and each round
// contributes one static/adaptive elapsed ratio per static arm. The
// adaptive arm's Point carries Speedup = min over static arms of the
// median per-round ratio, and the controller's total applied-decision
// count; static arms report no speedup (they are the baselines).
func runAdaptive(ctx context.Context, shards int, mode string, cfg Config, st *runtime.Stats) ([]Point, error) {
	arms := adaptiveArms(shards, cfg)
	adaptIdx := 0
	for i := range arms {
		if arms[i].adaptive {
			adaptIdx = i
		}
	}
	grain := cfg.Grain
	if grain <= 0 {
		grain = defaultAdaptiveGrain
	}
	// Chain links simulate the asymmetry the class-gating rule exists for:
	// a link spins SlowFactor× longer on a slow worker. Fan tasks spin a
	// fixed grain — any worker serves a burst equally well.
	chainBody := func(ctx context.Context) error {
		speed := 1.0
		if pl, ok := runtime.TaskPlacement(ctx); ok {
			speed = pl.Speed
		}
		x := uint64(grain)
		for i := 0; i < int(float64(grain)/speed); i++ {
			x = x*1664525 + 1013904223
		}
		atomic.AddUint64(&sink, x)
		return nil
	}
	fanBody := taskBody(grain)

	type acc struct {
		elapsed      time.Duration
		roundElapsed time.Duration
		executed     uint64
		decisions    uint64
		ratios       []float64
	}
	accs := make([]acc, len(arms))
	resolved := 0
	runLeg := func(ai, n int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		rt := runtime.New(arms[ai].opts...)
		start := time.Now()
		time.Sleep(adaptiveIdleGap)
		remaining := n
		for seg := 0; remaining > 0; seg++ {
			links := adaptiveChainLinks
			if links > remaining {
				links = remaining
			}
			if err := submitAdaptiveSegment(ctx, rt, mode, "link", links, int64(seg), chainBody); err != nil {
				rt.Shutdown()
				return err
			}
			if err := rt.WaitCtx(ctx); err != nil {
				rt.Shutdown()
				return err
			}
			remaining -= links
			if remaining > 0 {
				fan := 2 * cfg.Workers
				if fan > remaining {
					fan = remaining
				}
				if err := submitAdaptiveSegment(ctx, rt, mode, "fan", fan, -1, fanBody); err != nil {
					rt.Shutdown()
					return err
				}
				if err := rt.WaitCtx(ctx); err != nil {
					rt.Shutdown()
					return err
				}
				remaining -= fan
			}
			time.Sleep(adaptiveIdleGap)
		}
		el := time.Since(start)
		rt.StatsInto(st)
		resolved = rt.Shards()
		rt.Shutdown()
		if st.Executed != uint64(n) {
			return fmt.Errorf("throughput: %s/%s shards=%d %s lost tasks: executed %d of %d",
				ScenarioAdaptive, arms[ai].name, resolved, mode, st.Executed, n)
		}
		a := &accs[ai]
		a.elapsed += el
		a.roundElapsed += el
		a.executed += st.Executed
		a.decisions += st.Adaptive.Decisions
		return nil
	}

	rounds := cfg.PairRounds
	if rounds <= 0 {
		rounds = defaultPairRounds
	}
	if maxRounds := cfg.Tasks / 2; rounds > maxRounds {
		rounds = maxRounds
	}
	if rounds < 1 {
		rounds = 1
	}
	remaining := cfg.Tasks
	for r := 0; r < rounds; r++ {
		roundTasks := remaining / (rounds - r)
		remaining -= roundTasks
		legA := roundTasks / 2
		legB := roundTasks - legA
		for i := range accs {
			accs[i].roundElapsed = 0
		}
		for ai := 0; ai < len(arms); ai++ {
			if err := runLeg(ai, legA); err != nil {
				return nil, err
			}
		}
		for ai := len(arms) - 1; ai >= 0; ai-- {
			if err := runLeg(ai, legB); err != nil {
				return nil, err
			}
		}
		ad := accs[adaptIdx].roundElapsed
		if ad <= 0 {
			continue
		}
		for ai := range arms {
			if ai == adaptIdx || accs[ai].roundElapsed <= 0 {
				continue
			}
			accs[ai].ratios = append(accs[ai].ratios, float64(accs[ai].roundElapsed)/float64(ad))
		}
	}

	total := cfg.Tasks
	pts := make([]Point, 0, len(arms))
	speedup := 0.0
	for ai := range arms {
		if ai == adaptIdx {
			continue
		}
		m := medianOf(accs[ai].ratios)
		if speedup == 0 || m < speedup {
			speedup = m
		}
	}
	for ai, arm := range arms {
		a := accs[ai]
		p := Point{
			Scenario:    ScenarioAdaptive,
			Scheduler:   arm.name,
			Shards:      resolved,
			Mode:        mode,
			Tasks:       total,
			Elapsed:     a.elapsed,
			TasksPerSec: float64(total) / a.elapsed.Seconds(),
			NsPerTask:   float64(a.elapsed.Nanoseconds()) / float64(total),
			Executed:    a.executed,
		}
		if arm.adaptive {
			p.Speedup = speedup
			p.AdaptiveDecisions = a.decisions
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// submitAdaptiveSegment submits one phase segment and is mode-aware: a
// chain segment (key ≥ 0) serialises its n tasks InOut on the segment key,
// a fan segment (key < 0) submits n independent tasks.
func submitAdaptiveSegment(ctx context.Context, rt *runtime.Runtime, mode, name string, n int, key int64, body runtime.Body) error {
	var deps []runtime.Dep
	if key >= 0 {
		deps = []runtime.Dep{runtime.InOut(key)}
	}
	if mode == "batch" {
		specs := make([]runtime.TaskSpec, n)
		for i := range specs {
			specs[i] = runtime.TaskSpec{Name: name, Cost: 1, Body: body, Deps: deps}
		}
		_, err := rt.SubmitBatchCtx(ctx, specs)
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := rt.SubmitCtx(ctx, name, 1, body, deps...); err != nil {
			return err
		}
	}
	return nil
}

// submitChains submits n chain links in round-robin waves — one wave holds
// the next link of every chain, InOut-serialised per chain, so the chains
// progress together and every worker has its own chain hot — per-task or
// batched according to mode.
func submitChains(ctx context.Context, rt *runtime.Runtime, mode string, n, chains int, bodies []runtime.Body) error {
	submitted := 0
	specs := make([]runtime.TaskSpec, 0, chains)
	for submitted < n {
		specs = specs[:0]
		for c := 0; c < chains && submitted+len(specs) < n; c++ {
			specs = append(specs, runtime.TaskSpec{
				Name: "link", Cost: 1, Body: bodies[c],
				Deps: []runtime.Dep{runtime.InOut(int64(c))},
			})
		}
		if mode == "batch" {
			if _, err := rt.SubmitBatchCtx(ctx, specs); err != nil {
				return err
			}
		} else {
			for _, sp := range specs {
				if _, err := rt.SubmitCtx(ctx, sp.Name, sp.Cost, sp.Body, sp.Deps...); err != nil {
					return err
				}
			}
		}
		submitted += len(specs)
	}
	return nil
}

// medianOf returns the median of xs (0 when empty) — the drift-robust
// aggregate of the per-round paired ratios.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// produce submits n tasks of the scenario's dependence shape from one
// producer goroutine, per-task or batched according to mode.
func produce(ctx context.Context, rt *runtime.Runtime, scenario, mode string, producer, n int, body runtime.Body, cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(producer)*7919))
	deps := func(i int) []runtime.Dep {
		switch scenario {
		case ScenarioParallel:
			return nil
		case ScenarioFanOut:
			return []runtime.Dep{runtime.In("fan-root")}
		case ScenarioChain:
			return []runtime.Dep{runtime.InOut("chain")}
		case ScenarioSteal:
			// Groups of one root writer plus stealFan readers: the root's
			// completion releases the whole fan at once onto one worker.
			key := stealKey(producer, i/(stealFan+1))
			if i%(stealFan+1) == 0 {
				return []runtime.Dep{runtime.Out(key)}
			}
			return []runtime.Dep{runtime.In(key)}
		default: // ScenarioRandom
			nd := 1 + rng.Intn(3)
			ds := make([]runtime.Dep, nd)
			for j := range ds {
				key := rng.Intn(cfg.Keys)
				switch rng.Intn(3) {
				case 0:
					ds[j] = runtime.In(key)
				case 1:
					ds[j] = runtime.Out(key)
				default:
					ds[j] = runtime.InOut(key)
				}
			}
			return ds
		}
	}
	if mode == "batch" {
		for i := 0; i < n; i += cfg.Batch {
			sz := cfg.Batch
			if n-i < sz {
				sz = n - i
			}
			specs := make([]runtime.TaskSpec, sz)
			for j := range specs {
				specs[j] = runtime.TaskSpec{Name: "t", Cost: 1, Body: body, Deps: deps(i + j)}
			}
			if _, err := rt.SubmitBatchCtx(ctx, specs); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if _, err := rt.SubmitCtx(ctx, "t", 1, body, deps(i)...); err != nil {
			return err
		}
	}
	return nil
}

// taskBody builds the per-task workload: grain iterations of an LCG spin
// whose result escapes into sink.
func taskBody(grain int) runtime.Body {
	if grain <= 0 {
		return func(context.Context) error { return nil }
	}
	return func(context.Context) error {
		x := uint64(grain)
		for i := 0; i < grain; i++ {
			x = x*1664525 + 1013904223
		}
		atomic.AddUint64(&sink, x)
		return nil
	}
}

// runChaos measures ScenarioChaos over one (scheduler, shards, mode) cell
// as drift-cancelling paired rounds: a clean arm and a fault-injected arm
// run the identical retry- and deadline-configured workload (the clean arm
// simply has no injector), forward then reverse per round on fresh
// runtimes, and the faulty arm's ChaosOverhead is the median of per-round
// faulty/clean elapsed ratios. Each faulty leg gets a fresh injector with
// the same seed, so every leg replays the same deterministic fault
// schedule; the leg fails hard if any task is lost (terminal states must
// account for every submission) or if no fault actually fired.
func runChaos(ctx context.Context, kind runtime.SchedulerKind, shards int, mode string, cfg Config, st *runtime.Stats) ([]Point, error) {
	type acc struct {
		elapsed      time.Duration
		roundElapsed time.Duration
		executed     uint64
		skipped      uint64
		submitted    uint64
		ratios       []float64
	}
	accs := make([]acc, 2) // 0 = clean baseline, 1 = faulty
	resolved := 0
	base := taskBody(cfg.Grain)
	runLeg := func(vi, n int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		var inj *chaos.Injector
		if vi == 1 {
			inj = chaos.New(chaos.Config{
				Seed:       uint64(cfg.Seed),
				PanicRate:  chaosPanicRate,
				ErrorRate:  chaosErrorRate,
				DelayRate:  chaosDelayRate,
				StickyRate: chaosStickyRate,
				Delay:      chaosDelayStall,
			})
		}
		rt := runtime.New(
			runtime.WithWorkers(cfg.Workers),
			runtime.WithScheduler(kind),
			runtime.WithShards(shards),
		)
		start := time.Now()
		if err := submitChaos(ctx, rt, mode, n, inj, base, cfg); err != nil {
			rt.Shutdown()
			return err
		}
		// WaitCtx drains fully before surfacing task errors, so on the
		// faulty arm a non-ctx error just means the fault schedule fired —
		// which is the point. The clean arm must stay free of injected
		// failure classes (panics, body errors) — but a deadline overrun is
		// wall-clock, so on a loaded box (the race detector, a saturated CI
		// runner) a deadline task can organically miss its bound with no
		// injector at all; that is the workload behaving as specified, not
		// fault leakage, and the accounting checks below still apply.
		if err := rt.WaitCtx(ctx); err != nil {
			var dl *runtime.DeadlineError
			if ctx.Err() != nil || (vi == 0 && !errors.As(err, &dl)) {
				rt.Shutdown()
				return err
			}
		}
		el := time.Since(start)
		rt.StatsInto(st)
		resolved = rt.Shards()
		rt.Shutdown()
		// Exactly one terminal state per submission: executed (including
		// terminally failed) or skipped (poisoned / cancelled). On the
		// clean arm skips would themselves be a bug.
		if st.Executed+st.Skipped != uint64(n) {
			return fmt.Errorf("throughput: chaos/%s shards=%d %s lost tasks: executed %d + skipped %d of %d",
				kind, resolved, mode, st.Executed, st.Skipped, n)
		}
		if vi == 0 && st.Skipped != 0 {
			return fmt.Errorf("throughput: chaos/%s clean arm skipped %d tasks", kind, st.Skipped)
		}
		if vi == 1 && n > 0 {
			if cs := inj.Stats(); cs.Panics+cs.Errors+cs.Delays == 0 && n >= 256 {
				return fmt.Errorf("throughput: chaos/%s faulty arm injected nothing over %d tasks", kind, n)
			}
		}
		a := &accs[vi]
		a.elapsed += el
		a.roundElapsed += el
		a.executed += st.Executed
		a.skipped += st.Skipped
		a.submitted += uint64(n)
		return nil
	}

	rounds := cfg.PairRounds
	if rounds <= 0 {
		rounds = defaultPairRounds
	}
	if maxRounds := cfg.Tasks / 2; rounds > maxRounds {
		rounds = maxRounds
	}
	if rounds < 1 {
		rounds = 1
	}
	remaining := cfg.Tasks
	for r := 0; r < rounds; r++ {
		roundTasks := remaining / (rounds - r)
		remaining -= roundTasks
		legA := roundTasks / 2
		legB := roundTasks - legA
		for i := range accs {
			accs[i].roundElapsed = 0
		}
		for vi := 0; vi < len(accs); vi++ {
			if err := runLeg(vi, legA); err != nil {
				return nil, err
			}
		}
		for vi := len(accs) - 1; vi >= 0; vi-- {
			if err := runLeg(vi, legB); err != nil {
				return nil, err
			}
		}
		if base := accs[0].roundElapsed; base > 0 && accs[1].roundElapsed > 0 {
			accs[1].ratios = append(accs[1].ratios, float64(accs[1].roundElapsed)/float64(base))
		}
	}

	total := cfg.Tasks
	pts := make([]Point, 0, 2)
	for vi := range accs {
		a := accs[vi]
		p := Point{
			Scenario:    ScenarioChaos,
			Scheduler:   kind.String(),
			Shards:      resolved,
			Mode:        mode,
			Tasks:       total,
			Elapsed:     a.elapsed,
			TasksPerSec: float64(total) / a.elapsed.Seconds(),
			NsPerTask:   float64(a.elapsed.Nanoseconds()) / float64(total),
			Executed:    a.executed,
			Faulty:      vi == 1,
		}
		if vi == 1 {
			p.ChaosOverhead = medianOf(a.ratios)
			if a.submitted > 0 {
				p.ChaosSurvival = float64(a.executed+a.skipped) / float64(a.submitted)
			}
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// submitChaos submits ScenarioChaos's workload: n tasks with retry
// policies, a dependence chain joined by every chaosChainStride-th task
// (so a terminal panic must skip-propagate, not wedge the chain), and a
// deadline shorter than the injected stall on every chaosDeadlineMod-th
// task (so delay faults become deadline overruns). Bodies are wrapped by
// inj keyed on the task index — a nil injector (the clean arm) runs them
// bare. Retry and Deadline are TaskSpec-only knobs, so both modes go
// through SubmitBatchCtx; "single" submits one-spec batches.
func submitChaos(ctx context.Context, rt *runtime.Runtime, mode string, n int, inj *chaos.Injector, base runtime.Body, cfg Config) error {
	chunk := 1
	if mode == "batch" && cfg.Batch > 1 {
		chunk = cfg.Batch
	}
	chains := cfg.Workers
	if chains < 1 {
		chains = 1
	}
	specs := make([]runtime.TaskSpec, 0, chunk)
	flush := func() error {
		if len(specs) == 0 {
			return nil
		}
		_, err := rt.SubmitBatchCtx(ctx, specs)
		specs = specs[:0]
		return err
	}
	for i := 0; i < n; i++ {
		sp := runtime.TaskSpec{
			Name: "c", Cost: 1,
			Body:  inj.Wrap(uint64(i), base),
			Retry: runtime.RetryPolicy{Max: chaosRetryMax, Backoff: chaosBackoff, MaxBackoff: chaosMaxBackoff},
		}
		switch i % chaosChainStride {
		case 0:
			sp.Deps = []runtime.Dep{runtime.InOut(int64(i % chains))}
		case 1:
			if i%chaosDeadlineMod == 1 {
				sp.Deadline = chaosDeadline
			}
		}
		specs = append(specs, sp)
		if len(specs) == chunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}
