package throughput

import (
	"context"
	"fmt"

	"repro/internal/stats"
	"repro/raa"
)

// Spec configures the throughput experiment through the raa registry.
type Spec struct {
	// Scenarios: parallel, fanout, chain, random, steal, longrun, hetero,
	// locality, topology, adaptive, chaos; empty = all.
	Scenarios []string `json:"scenarios,omitempty"`
	// Schedulers: worksteal, fifo, cats; empty = all.
	Schedulers []string `json:"schedulers,omitempty"`
	// Shards are the tracker shard counts to sweep (0 = auto-size).
	Shards []int `json:"shards"`
	// Tasks is the task count per run.
	Tasks int `json:"tasks"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Producers is the number of concurrent submitting goroutines.
	Producers int `json:"producers"`
	// Batch > 1 also measures SubmitBatch in chunks of this size.
	Batch int `json:"batch"`
	// Grain is spin-work per task body (iterations; 0 = empty body).
	Grain int `json:"grain"`
	// Keys is the random scenario's key-space size.
	Keys int `json:"keys"`
	// Rounds is the longrun scenario's submit→Wait round count (0 = 8).
	Rounds int `json:"rounds,omitempty"`
	// FastWorkers is the hetero scenario's fast-class size, clamped so
	// fast + slow always equals Workers (0 = a quarter of the pool).
	FastWorkers int `json:"fast_workers,omitempty"`
	// SlowFactor is the hetero scenario's simulated slow-class delay
	// multiplier (0 = 4): slow workers spin SlowFactor× the grain.
	SlowFactor float64 `json:"slow_factor,omitempty"`
	// Windows is the locality scenario's locality-window sweep (0 =
	// runtime default, negative = locality off; empty = [-1, 0]).
	Windows []int `json:"windows,omitempty"`
	// PayloadKB is the locality and topology scenarios' per-chain payload
	// size in KiB (0 = 32).
	PayloadKB int `json:"payload_kb,omitempty"`
	// Domains is the topology scenario's memory-domain count for the
	// domain-aware variant (0 = 2).
	Domains int `json:"domains,omitempty"`
	// PairRounds is the locality and topology scenarios' paired-round
	// count (0 = 3); speedups are medians of per-round paired ratios.
	PairRounds int `json:"pair_rounds,omitempty"`
	// Seed makes the random dependence streams reproducible.
	Seed int64 `json:"seed"`
}

type experiment struct{}

func init() { raa.Register(experiment{}) }

func (experiment) Name() string { return "throughput" }

func (experiment) Describe() string {
	return "Submit- and dispatch-path throughput plus criticality-aware placement on a heterogeneous pool: tasks/sec per scenario, scheduler, tracker shard count, and submission mode"
}

func (experiment) Aliases() []string { return []string{"tput"} }

// Volatile: the headline metrics are wall-clock rates.
func (experiment) Volatile() bool { return true }

func (experiment) DefaultSpec() raa.Spec {
	return Spec{
		Shards:    []int{1, 4, 16, 64},
		Tasks:     40000,
		Workers:   8,
		Producers: 8,
		Batch:     64,
		Grain:     32,
		Keys:      256,
		Seed:      42,
	}
}

func (experiment) QuickSpec() raa.Spec {
	return Spec{
		Schedulers: []string{"worksteal"},
		Shards:     []int{1, 8},
		Tasks:      3000,
		Workers:    4,
		Producers:  4,
		Batch:      64,
		Grain:      8,
		Keys:       64,
		Seed:       42,
	}
}

func (e experiment) Run(ctx context.Context, spec raa.Spec) (*raa.Result, error) {
	s, ok := spec.(Spec)
	if !ok {
		return nil, fmt.Errorf("throughput: spec type %T, want throughput.Spec", spec)
	}
	pts, err := Run(ctx, Config{
		Scenarios:   s.Scenarios,
		Schedulers:  s.Schedulers,
		Shards:      s.Shards,
		Tasks:       s.Tasks,
		Workers:     s.Workers,
		Producers:   s.Producers,
		Batch:       s.Batch,
		Grain:       s.Grain,
		Keys:        s.Keys,
		Rounds:      s.Rounds,
		FastWorkers: s.FastWorkers,
		SlowFactor:  s.SlowFactor,
		Windows:     s.Windows,
		PayloadKB:   s.PayloadKB,
		Domains:     s.Domains,
		PairRounds:  s.PairRounds,
		Seed:        s.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &raa.Result{
		Experiment: e.Name(),
		Spec:       s,
		Metrics:    map[string]float64{},
		Tables:     []*stats.Table{Table(pts)},
	}
	for _, p := range pts {
		key := fmt.Sprintf("%s_%s_%s_shards%d", raa.MetricKey(p.Scenario), raa.MetricKey(p.Scheduler), p.Mode, p.Shards)
		if p.Scenario == ScenarioLocality {
			// The window is the locality scenario's sweep axis; bake it
			// into the key so on/off cells don't collide.
			key += fmt.Sprintf("_win%d", p.Window)
		}
		if p.Scenario == ScenarioTopology {
			// The domain count is the topology scenario's axis: dom1 is the
			// flat baseline, dom<N> the domain-aware variant.
			key += fmt.Sprintf("_dom%d", p.Domains)
		}
		if p.Scenario == ScenarioChaos {
			// The chaos scenario's axis is the fault schedule: clean is the
			// injector-free baseline, faulty the injected arm.
			if p.Faulty {
				key += "_faulty"
			} else {
				key += "_clean"
			}
		}
		res.Metrics[key+"_tasks_per_sec"] = p.TasksPerSec
		// Executed is deterministic: it must always equal the task count,
		// whatever the sharding and batching did.
		res.Metrics[key+"_executed"] = float64(p.Executed)
		if p.Scenario == ScenarioHetero {
			// The placement verdict: what fraction of the critical chain
			// ran on the fast worker class.
			res.Metrics[key+"_crit_on_fast"] = p.CritOnFast
		}
		if p.Scenario == ScenarioLocality || p.Scenario == ScenarioTopology {
			res.Metrics[key+"_ns_per_task"] = p.NsPerTask
			if p.Speedup > 0 {
				// The drift-cancelled verdict: median of per-round paired
				// ratios over this cell's baseline arm.
				res.Metrics[key+"_speedup"] = p.Speedup
			}
		}
		if p.Scenario == ScenarioTopology {
			// Cross-domain traffic is the topology scenario's first-class
			// metric: the fraction of pool-released dispatches that crossed
			// a memory-domain boundary.
			res.Metrics[key+"_cross_domain_frac"] = p.CrossDomainFrac
		}
		if p.Scenario == ScenarioAdaptive {
			res.Metrics[key+"_ns_per_task"] = p.NsPerTask
			if p.Speedup > 0 {
				// The adaptive verdict: the minimum over the static arms of
				// the median per-round paired ratio — > 1 means the
				// controller beat every static configuration.
				res.Metrics[key+"_speedup"] = p.Speedup
			}
			if p.AdaptiveDecisions > 0 {
				res.Metrics[key+"_decisions"] = float64(p.AdaptiveDecisions)
			}
		}
		if p.Scenario == ScenarioChaos {
			res.Metrics[key+"_ns_per_task"] = p.NsPerTask
			if p.Faulty {
				// The robustness verdict pair: how much the fault schedule
				// cost (median of per-round faulty/clean elapsed ratios) and
				// whether every submitted task reached exactly one terminal
				// state (1.0 is the only acceptable survival).
				res.Metrics[key+"_chaos_overhead"] = p.ChaosOverhead
				res.Metrics[key+"_chaos_survival"] = p.ChaosSurvival
			}
		}
	}
	for _, n := range summarize(pts) {
		res.Notes = append(res.Notes, n)
	}
	return res, nil
}

// Table renders the sweep: one row per (scenario, scheduler, mode), one
// column per shard count, cells in Ktasks/s.
func Table(pts []Point) *stats.Table {
	var shardCols []int
	seen := map[int]bool{}
	for _, p := range pts {
		if !seen[p.Shards] {
			seen[p.Shards] = true
			shardCols = append(shardCols, p.Shards)
		}
	}
	headers := []string{"scenario", "scheduler", "mode", "variant"}
	for _, s := range shardCols {
		headers = append(headers, fmt.Sprintf("%d-shard", s))
	}
	t := stats.NewTable("Submit throughput (Ktasks/s)", headers...)
	type rowKey struct {
		scenario, sched, mode string
		window, domains       int
		faulty                bool
	}
	cells := map[rowKey]map[int]float64{}
	var order []rowKey
	for _, p := range pts {
		k := rowKey{p.Scenario, p.Scheduler, p.Mode, p.Window, p.Domains, p.Faulty}
		if cells[k] == nil {
			cells[k] = map[int]float64{}
			order = append(order, k)
		}
		cells[k][p.Shards] = p.TasksPerSec
	}
	for _, k := range order {
		row := []string{k.scenario, k.sched, k.mode, variantLabel(k.scenario, k.window, k.domains, k.faulty)}
		for _, s := range shardCols {
			if v, ok := cells[k][s]; ok {
				row = append(row, fmt.Sprintf("%.0f", v/1e3))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// variantLabel renders a table row's paired-measurement axis: the locality
// scenario sweeps the window ("def" is the runtime default, "off" the
// disabled central-injector baseline), the topology scenario the domain
// count ("flat" is the single-domain baseline), the chaos scenario the
// fault schedule ("clean" is the injector-free baseline); other scenarios
// have no variant axis.
func variantLabel(scenario string, window, domains int, faulty bool) string {
	switch scenario {
	case ScenarioChaos:
		if faulty {
			return "faulty"
		}
		return "clean"
	case ScenarioLocality:
		switch {
		case window < 0:
			return "off"
		case window == 0:
			return "def"
		default:
			return fmt.Sprintf("win%d", window)
		}
	case ScenarioTopology:
		if domains <= 1 {
			return "flat"
		}
		return fmt.Sprintf("%ddom", domains)
	default:
		return "-"
	}
}

// summarize produces the headline notes: per scenario, the best sharded
// speedup over the 1-shard baseline and the best batched speedup over
// per-task submission, at matched configurations.
func summarize(pts []Point) []string {
	type cfg struct {
		scenario, sched, mode   string
		shards, window, domains int
		faulty                  bool
	}
	rate := map[cfg]float64{}
	for _, p := range pts {
		rate[cfg{p.Scenario, p.Scheduler, p.Mode, p.Shards, p.Window, p.Domains, p.Faulty}] = p.TasksPerSec
	}
	shardGain := map[string]float64{}
	batchGain := map[string]float64{}
	for c, v := range rate {
		if c.shards > 1 {
			if base := rate[cfg{c.scenario, c.sched, c.mode, 1, c.window, c.domains, c.faulty}]; base > 0 {
				if g := v / base; g > shardGain[c.scenario] {
					shardGain[c.scenario] = g
				}
			}
		}
		if c.mode == "batch" {
			if base := rate[cfg{c.scenario, c.sched, "single", c.shards, c.window, c.domains, c.faulty}]; base > 0 {
				if g := v / base; g > batchGain[c.scenario] {
					batchGain[c.scenario] = g
				}
			}
		}
	}
	var notes []string
	for _, s := range Scenarios() {
		if g, ok := shardGain[s]; ok {
			notes = append(notes, fmt.Sprintf("%s: best sharded speedup over 1-shard baseline %.2fx", s, g))
		}
		if g, ok := batchGain[s]; ok {
			notes = append(notes, fmt.Sprintf("%s: best SubmitBatch speedup over per-task Submit %.2fx", s, g))
		}
	}
	notes = append(notes, localityNotes(pts)...)
	notes = append(notes, topologyNotes(pts)...)
	notes = append(notes, heteroNotes(pts)...)
	notes = append(notes, adaptiveNotes(pts)...)
	notes = append(notes, chaosNotes(pts)...)
	return notes
}

// chaosNotes summarises the chaos scenario: the worst (largest) per-cell
// overhead of running under the fault schedule, and whether every faulty
// cell kept full survival.
func chaosNotes(pts []Point) []string {
	var worst Point
	survival := 1.0
	seen := false
	for _, p := range pts {
		if p.Scenario != ScenarioChaos || !p.Faulty {
			continue
		}
		seen = true
		if p.ChaosOverhead > worst.ChaosOverhead {
			worst = p
		}
		if p.ChaosSurvival < survival {
			survival = p.ChaosSurvival
		}
	}
	if !seen {
		return nil
	}
	return []string{fmt.Sprintf(
		"chaos: survival %.3f across faulty cells; worst fault-load overhead %.2fx vs the clean arm (%s/%s, median of paired rounds)",
		survival, worst.ChaosOverhead, worst.Scheduler, worst.Mode)}
}

// adaptiveNotes summarises the adaptive scenario: the controller arm's
// worst-case advantage over the static arms (Point.Speedup is already the
// minimum over arms of the median per-round ratio) and how many policy
// decisions produced it.
func adaptiveNotes(pts []Point) []string {
	var best Point
	for _, p := range pts {
		if p.Scenario == ScenarioAdaptive && p.Speedup > best.Speedup {
			best = p
		}
	}
	if best.Speedup <= 0 {
		return nil
	}
	return []string{fmt.Sprintf(
		"adaptive: the monitor→reason→adapt controller beat every static arm by ≥ %.2fx (median of paired rounds; %s mode, %d decisions applied)",
		best.Speedup, best.Mode, best.AdaptiveDecisions)}
}

// localityNotes summarises the locality scenario: the best locality-on
// cell's drift-cancelled speedup (the median of per-round paired ratios —
// Point.Speedup) over its locality-off baseline, with the ns/task view.
func localityNotes(pts []Point) []string {
	var best Point
	for _, p := range pts {
		if p.Scenario == ScenarioLocality && p.Speedup > best.Speedup {
			best = p
		}
	}
	if best.Speedup <= 0 {
		return nil
	}
	return []string{fmt.Sprintf(
		"locality: worker-local successor placement %.2fx over the injector baseline (median of paired rounds; %s/%s, %.0f ns/task)",
		best.Speedup, best.Scheduler, best.Mode, best.NsPerTask)}
}

// topologyNotes summarises the topology scenario: the best domain-aware
// cell's drift-cancelled speedup over the flat single-domain baseline,
// plus how much of its traffic stayed inside a domain.
func topologyNotes(pts []Point) []string {
	var best Point
	for _, p := range pts {
		if p.Scenario == ScenarioTopology && p.Domains > 1 && p.Speedup > best.Speedup {
			best = p
		}
	}
	if best.Speedup <= 0 {
		return nil
	}
	return []string{fmt.Sprintf(
		"topology: %d-domain hierarchy-aware placement %.2fx over the flat baseline (median of paired rounds; %s/%s, %.1f%% of dispatches crossed a domain)",
		best.Domains, best.Speedup, best.Scheduler, best.Mode, best.CrossDomainFrac*100)}
}

// heteroNotes summarises the hetero scenario's placement story: per
// scheduler, the chain-on-fast fraction over every sweep cell (min–max
// when cells disagree), and cats's best speedup over fifo at a matched
// (shards, mode) configuration.
func heteroNotes(pts []Point) []string {
	frac := map[string][]float64{}
	type cell struct {
		mode   string
		shards int
	}
	rate := map[string]map[cell]float64{}
	for _, p := range pts {
		if p.Scenario != ScenarioHetero {
			continue
		}
		frac[p.Scheduler] = append(frac[p.Scheduler], p.CritOnFast)
		if rate[p.Scheduler] == nil {
			rate[p.Scheduler] = map[cell]float64{}
		}
		rate[p.Scheduler][cell{p.Mode, p.Shards}] = p.TasksPerSec
	}
	if len(frac) == 0 {
		return nil
	}
	var notes []string
	for _, sched := range []string{"cats", "worksteal", "fifo"} {
		fs, ok := frac[sched]
		if !ok {
			continue
		}
		lo, hi := fs[0], fs[0]
		for _, f := range fs[1:] {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		if lo == hi {
			notes = append(notes, fmt.Sprintf("hetero: %s ran %.0f%% of the critical chain on the fast class", sched, hi*100))
		} else {
			notes = append(notes, fmt.Sprintf("hetero: %s ran %.0f%%–%.0f%% of the critical chain on the fast class across cells", sched, lo*100, hi*100))
		}
	}
	best := 0.0
	for c, v := range rate["cats"] {
		if base := rate["fifo"][c]; base > 0 {
			if g := v / base; g > best {
				best = g
			}
		}
	}
	if best > 0 {
		notes = append(notes, fmt.Sprintf("hetero: best cats speedup over fifo at matched config %.2fx", best))
	}
	return notes
}
