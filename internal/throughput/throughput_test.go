package throughput

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func smallConfig() Config {
	return Config{
		Schedulers: []string{"worksteal"},
		Shards:     []int{1, 4},
		Tasks:      500,
		Workers:    2,
		Producers:  2,
		Batch:      16,
		Keys:       16,
		Seed:       1,
	}
}

func TestRunAllScenarios(t *testing.T) {
	cfg := smallConfig()
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// scenarios × schedulers × shards × modes(single, batch)
	want := len(Scenarios()) * 1 * 2 * 2
	if len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Executed != uint64(cfg.Tasks) {
			t.Errorf("%s/%s shards=%d %s: executed %d, want %d",
				p.Scenario, p.Scheduler, p.Shards, p.Mode, p.Executed, cfg.Tasks)
		}
		if p.TasksPerSec <= 0 {
			t.Errorf("%s: non-positive rate %v", p.Scenario, p.TasksPerSec)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Tasks: 0, Workers: 1, Producers: 1}); err == nil {
		t.Fatal("zero tasks must be rejected")
	}
	if _, err := Run(ctx, Config{Tasks: 10, Workers: 0, Producers: 1}); err == nil {
		t.Fatal("zero workers must be rejected")
	}
	cfg := smallConfig()
	cfg.Scenarios = []string{"bogus"}
	if _, err := Run(ctx, cfg); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown scenario = %v, want naming error", err)
	}
	cfg = smallConfig()
	cfg.Schedulers = []string{"lifo"}
	if _, err := Run(ctx, cfg); err == nil || !strings.Contains(err.Error(), "lifo") {
		t.Fatalf("unknown scheduler = %v, want naming error", err)
	}
	// Scheduler parsing must accept any case (the fixed parse path).
	cfg = smallConfig()
	cfg.Schedulers = []string{"FIFO"}
	cfg.Scenarios = []string{ScenarioParallel}
	if _, err := Run(ctx, cfg); err != nil {
		t.Fatalf("upper-case scheduler name rejected: %v", err)
	}
}

// Shard requests that resolve to the same count (clamping, 0 = auto) must
// be deduplicated, not silently overwrite each other's sweep cells.
func TestRunDedupesResolvedShardCounts(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenarios = []string{ScenarioParallel}
	cfg.Shards = []int{1, 1000, 64} // 1000 clamps to 64: duplicate cell
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pts {
		k := fmt.Sprintf("%s/%s/%s/%d", p.Scenario, p.Scheduler, p.Mode, p.Shards)
		if seen[k] {
			t.Fatalf("duplicate sweep cell for shards=%d", p.Shards)
		}
		seen[k] = true
	}
	if want := 1 * 1 * 2 * 2; len(pts) != want { // 1 scenario × 1 sched × {1,64} × 2 modes
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
}

// The steal scenario's root+fan grouping must account for task counts that
// do not divide evenly into groups — the last group simply has fewer
// children, and every accepted task still executes.
func TestStealScenarioHandlesRaggedGroups(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenarios = []string{ScenarioSteal}
	cfg.Tasks = 501 // not a multiple of (1 + stealFan) or of Producers
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Executed != uint64(cfg.Tasks) {
			t.Errorf("steal shards=%d %s: executed %d, want %d", p.Shards, p.Mode, p.Executed, cfg.Tasks)
		}
	}
}

// The longrun scenario must execute exactly Tasks over its rounds on one
// runtime, for any rounds/tasks combination.
func TestLongRunRoundsAccounting(t *testing.T) {
	for _, rounds := range []int{1, 3, 7} {
		cfg := smallConfig()
		cfg.Scenarios = []string{ScenarioLongRun}
		cfg.Tasks = 500
		cfg.Rounds = rounds
		pts, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if p.Executed != uint64(cfg.Tasks) {
				t.Errorf("longrun rounds=%d shards=%d %s: executed %d, want %d",
					rounds, p.Shards, p.Mode, p.Executed, cfg.Tasks)
			}
		}
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smallConfig()); err != context.Canceled {
		t.Fatalf("cancelled run = %v, want context.Canceled", err)
	}
}

func TestTableShape(t *testing.T) {
	pts, err := Run(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := Table(pts)
	s := tbl.String()
	for _, scenario := range Scenarios() {
		if !strings.Contains(s, scenario) {
			t.Errorf("table missing scenario %q:\n%s", scenario, s)
		}
	}
	for _, col := range []string{"1-shard", "4-shard", "single", "batch"} {
		if !strings.Contains(s, col) {
			t.Errorf("table missing %q:\n%s", col, s)
		}
	}
}

func TestSummarizeNotes(t *testing.T) {
	pts, err := Run(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	notes := summarize(pts)
	if len(notes) != 2*len(Scenarios()) {
		t.Fatalf("got %d notes, want %d (shard + batch gain per scenario):\n%v",
			len(notes), 2*len(Scenarios()), notes)
	}
}
