package throughput

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func smallConfig() Config {
	return Config{
		Schedulers: []string{"worksteal"},
		Shards:     []int{1, 4},
		Tasks:      500,
		Workers:    2,
		Producers:  2,
		Batch:      16,
		Keys:       16,
		Seed:       1,
	}
}

func TestRunAllScenarios(t *testing.T) {
	cfg := smallConfig()
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// scenarios × schedulers × shards × modes(single, batch); the locality
	// scenario additionally sweeps its two default window cells (off, on),
	// the topology scenario its two variant cells (flat, domain-aware), the
	// chaos scenario its two arms (clean, faulty), and the adaptive
	// scenario runs four arms per (shards, mode) cell instead of the
	// scheduler axis (three extra rows at one configured scheduler).
	want := (len(Scenarios()) + 2 + 1 + 3) * 1 * 2 * 2
	if len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Faulty {
			// The faulty chaos arm terminally fails some tasks by design:
			// its accounting check is full survival, not Executed == Tasks.
			if p.ChaosSurvival != 1 {
				t.Errorf("chaos faulty arm shards=%d %s: survival %v, want 1",
					p.Shards, p.Mode, p.ChaosSurvival)
			}
		} else if p.Executed != uint64(cfg.Tasks) {
			t.Errorf("%s/%s shards=%d %s: executed %d, want %d",
				p.Scenario, p.Scheduler, p.Shards, p.Mode, p.Executed, cfg.Tasks)
		}
		if p.TasksPerSec <= 0 {
			t.Errorf("%s: non-positive rate %v", p.Scenario, p.TasksPerSec)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Tasks: 0, Workers: 1, Producers: 1}); err == nil {
		t.Fatal("zero tasks must be rejected")
	}
	if _, err := Run(ctx, Config{Tasks: 10, Workers: 0, Producers: 1}); err == nil {
		t.Fatal("zero workers must be rejected")
	}
	cfg := smallConfig()
	cfg.Scenarios = []string{"bogus"}
	if _, err := Run(ctx, cfg); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown scenario = %v, want naming error", err)
	}
	cfg = smallConfig()
	cfg.Schedulers = []string{"lifo"}
	if _, err := Run(ctx, cfg); err == nil || !strings.Contains(err.Error(), "lifo") {
		t.Fatalf("unknown scheduler = %v, want naming error", err)
	}
	// Scheduler parsing must accept any case (the fixed parse path).
	cfg = smallConfig()
	cfg.Schedulers = []string{"FIFO"}
	cfg.Scenarios = []string{ScenarioParallel}
	if _, err := Run(ctx, cfg); err != nil {
		t.Fatalf("upper-case scheduler name rejected: %v", err)
	}
}

// Shard requests that resolve to the same count (clamping, 0 = auto) must
// be deduplicated, not silently overwrite each other's sweep cells.
func TestRunDedupesResolvedShardCounts(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenarios = []string{ScenarioParallel}
	cfg.Shards = []int{1, 1000, 64} // 1000 clamps to 64: duplicate cell
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pts {
		k := fmt.Sprintf("%s/%s/%s/%d", p.Scenario, p.Scheduler, p.Mode, p.Shards)
		if seen[k] {
			t.Fatalf("duplicate sweep cell for shards=%d", p.Shards)
		}
		seen[k] = true
	}
	if want := 1 * 1 * 2 * 2; len(pts) != want { // 1 scenario × 1 sched × {1,64} × 2 modes
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
}

// The steal scenario's root+fan grouping must account for task counts that
// do not divide evenly into groups — the last group simply has fewer
// children, and every accepted task still executes.
func TestStealScenarioHandlesRaggedGroups(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenarios = []string{ScenarioSteal}
	cfg.Tasks = 501 // not a multiple of (1 + stealFan) or of Producers
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Executed != uint64(cfg.Tasks) {
			t.Errorf("steal shards=%d %s: executed %d, want %d", p.Shards, p.Mode, p.Executed, cfg.Tasks)
		}
	}
}

// The longrun scenario must execute exactly Tasks over its rounds on one
// runtime, for any rounds/tasks combination.
func TestLongRunRoundsAccounting(t *testing.T) {
	for _, rounds := range []int{1, 3, 7} {
		cfg := smallConfig()
		cfg.Scenarios = []string{ScenarioLongRun}
		cfg.Tasks = 500
		cfg.Rounds = rounds
		pts, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if p.Executed != uint64(cfg.Tasks) {
				t.Errorf("longrun rounds=%d shards=%d %s: executed %d, want %d",
					rounds, p.Shards, p.Mode, p.Executed, cfg.Tasks)
			}
		}
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smallConfig()); err != context.Canceled {
		t.Fatalf("cancelled run = %v, want context.Canceled", err)
	}
}

func TestTableShape(t *testing.T) {
	pts, err := Run(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := Table(pts)
	s := tbl.String()
	for _, scenario := range Scenarios() {
		if !strings.Contains(s, scenario) {
			t.Errorf("table missing scenario %q:\n%s", scenario, s)
		}
	}
	for _, col := range []string{"1-shard", "4-shard", "single", "batch"} {
		if !strings.Contains(s, col) {
			t.Errorf("table missing %q:\n%s", col, s)
		}
	}
}

func TestSummarizeNotes(t *testing.T) {
	pts, err := Run(context.Background(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	notes := summarize(pts)
	// Shard + batch gain per scenario, one locality on-vs-off note, one
	// topology aware-vs-flat note, one hetero placement note per scheduler
	// in the sweep (a single scheduler here, and no cats-vs-fifo speedup
	// note without both in the sweep), the adaptive controller note, and
	// the chaos survival/overhead note.
	if want := 2*len(Scenarios()) + 5; len(notes) != want {
		t.Fatalf("got %d notes, want %d (shard + batch gain per scenario + locality + topology + hetero placement + adaptive + chaos):\n%v",
			len(notes), want, notes)
	}
	foundHetero, foundLocality := false, false
	for _, n := range notes {
		if strings.Contains(n, "critical chain on the fast class") {
			foundHetero = true
		}
		if strings.Contains(n, "worker-local successor placement") {
			foundLocality = true
		}
	}
	if !foundHetero {
		t.Fatalf("no hetero placement note in %v", notes)
	}
	if !foundLocality {
		t.Fatalf("no locality note in %v", notes)
	}
}

// The locality scenario must run one cell per window (off and on by
// default), execute every task in each, and honour an explicit Windows
// sweep.
func TestLocalityScenarioCells(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenarios = []string{ScenarioLocality}
	cfg.Shards = []int{1}
	cfg.Tasks = 300
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2; len(pts) != want { // 2 modes × 2 default windows
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	windows := map[int]bool{}
	for _, p := range pts {
		windows[p.Window] = true
		if p.Executed != uint64(cfg.Tasks) {
			t.Errorf("locality window=%d %s: executed %d, want %d", p.Window, p.Mode, p.Executed, cfg.Tasks)
		}
		if p.NsPerTask <= 0 {
			t.Errorf("locality window=%d %s: non-positive ns/task", p.Window, p.Mode)
		}
	}
	if !windows[-1] || !windows[0] {
		t.Fatalf("default sweep missing the off/on cells: %v", windows)
	}

	cfg.Windows = []int{4}
	pts, err = Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 { // 2 modes × 1 explicit window
		t.Fatalf("explicit window sweep: got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Window != 4 {
			t.Errorf("explicit window sweep ran window %d, want 4", p.Window)
		}
	}
}

// The topology scenario must produce one cell per variant (the flat
// single-domain baseline and the domain-aware split), execute every task
// in each, and report the paired speedup and the cross-domain-traffic
// fraction on the aware cell only.
func TestTopologyScenarioCells(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenarios = []string{ScenarioTopology}
	cfg.Shards = []int{1}
	cfg.Tasks = 300
	cfg.Workers = 4
	cfg.Domains = 2
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2; len(pts) != want { // 2 modes × {flat, 2-domain}
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	doms := map[int]bool{}
	for _, p := range pts {
		doms[p.Domains] = true
		if p.Executed != uint64(cfg.Tasks) {
			t.Errorf("topology domains=%d %s: executed %d, want %d", p.Domains, p.Mode, p.Executed, cfg.Tasks)
		}
		if p.NsPerTask <= 0 {
			t.Errorf("topology domains=%d %s: non-positive ns/task", p.Domains, p.Mode)
		}
		if p.Domains == 1 {
			if p.Speedup != 0 {
				t.Errorf("flat baseline cell carries a speedup (%v)", p.Speedup)
			}
			if p.CrossDomainFrac != 0 {
				t.Errorf("flat baseline cell reports cross-domain traffic (%v)", p.CrossDomainFrac)
			}
		} else {
			if p.Speedup <= 0 {
				t.Errorf("domain-aware cell missing its paired speedup")
			}
			if p.CrossDomainFrac < 0 || p.CrossDomainFrac > 1 {
				t.Errorf("cross-domain fraction %v out of range", p.CrossDomainFrac)
			}
		}
	}
	if !doms[1] || !doms[2] {
		t.Fatalf("sweep missing the flat/aware cells: %v", doms)
	}
}

// The adaptive scenario must produce one cell per arm (three static, one
// adaptive), execute every task in each, and report the paired speedup and
// the controller's decision count on the adaptive arm only.
func TestAdaptiveScenarioCells(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenarios = []string{ScenarioAdaptive}
	cfg.Shards = []int{1}
	cfg.Tasks = 400
	cfg.Workers = 4
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 2; len(pts) != want { // 4 arms × 2 modes
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	arms := map[string]bool{}
	for _, p := range pts {
		arms[p.Scheduler] = true
		if p.Executed != uint64(cfg.Tasks) {
			t.Errorf("adaptive/%s %s: executed %d, want %d", p.Scheduler, p.Mode, p.Executed, cfg.Tasks)
		}
		if p.Scheduler == "adaptive" {
			if p.Speedup <= 0 {
				t.Errorf("adaptive arm (%s mode) missing its paired speedup", p.Mode)
			}
			if p.AdaptiveDecisions == 0 {
				t.Errorf("adaptive arm (%s mode) applied no policy decisions", p.Mode)
			}
		} else {
			if p.Speedup != 0 || p.AdaptiveDecisions != 0 {
				t.Errorf("static arm %s (%s mode) carries adaptive verdicts (%v, %d)",
					p.Scheduler, p.Mode, p.Speedup, p.AdaptiveDecisions)
			}
		}
	}
	for _, a := range []string{"worksteal", "worksteal-nolocal", "cats", "adaptive"} {
		if !arms[a] {
			t.Fatalf("sweep missing arm %q: %v", a, arms)
		}
	}
}

// The hetero scenario must execute every task on every scheduler, and
// cats must keep the critical chain on the fast class — well above the
// fast class's 1/3 share of the pool, which is all a class-blind
// scheduler can promise.
func TestHeteroScenarioPlacement(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenarios = []string{ScenarioHetero}
	cfg.Schedulers = []string{"cats", "fifo"}
	cfg.Shards = []int{1}
	cfg.Tasks = 400
	cfg.Workers = 3
	cfg.FastWorkers = 1
	cfg.Grain = 512
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 * 2 * 1 * 2; len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Executed != uint64(cfg.Tasks) {
			t.Errorf("hetero/%s %s: executed %d, want %d", p.Scheduler, p.Mode, p.Executed, cfg.Tasks)
		}
		if p.CritOnFast < 0 || p.CritOnFast > 1 {
			t.Errorf("hetero/%s %s: CritOnFast %v out of range", p.Scheduler, p.Mode, p.CritOnFast)
		}
		if p.Scheduler == "cats" && p.CritOnFast < 0.6 {
			t.Errorf("hetero/cats %s: only %.0f%% of the chain on the fast class",
				p.Mode, p.CritOnFast*100)
		}
	}
}

// The hetero pool must always total Workers, whatever FastWorkers asks
// for, and the configured knobs must not be silently ignored.
func TestHeteroPoolResolution(t *testing.T) {
	cases := []struct {
		workers, fastIn int
		factorIn        float64
		fast, slow      int
		factor          float64
	}{
		{workers: 8, fastIn: 0, factorIn: 0, fast: 2, slow: 6, factor: 4},
		{workers: 8, fastIn: 3, factorIn: 2.5, fast: 3, slow: 5, factor: 2.5},
		{workers: 4, fastIn: 8, factorIn: 0, fast: 3, slow: 1, factor: 4}, // clamped, pool still 4
		{workers: 2, fastIn: 0, factorIn: 0, fast: 1, slow: 1, factor: 4},
		{workers: 1, fastIn: 5, factorIn: 0, fast: 1, slow: 0, factor: 4}, // degenerate: fast only
	}
	for _, tc := range cases {
		fast, slow, factor := heteroPool(Config{Workers: tc.workers, FastWorkers: tc.fastIn, SlowFactor: tc.factorIn})
		if fast != tc.fast || slow != tc.slow || factor != tc.factor {
			t.Errorf("heteroPool(workers=%d fast=%d factor=%v) = (%d, %d, %v), want (%d, %d, %v)",
				tc.workers, tc.fastIn, tc.factorIn, fast, slow, factor, tc.fast, tc.slow, tc.factor)
		}
		if tc.workers > 1 && fast+slow != tc.workers {
			t.Errorf("pool size %d != configured %d", fast+slow, tc.workers)
		}
	}
}

// A hetero task count that does not divide into chain groups must still
// execute exactly Tasks tasks (the last group absorbs the remainder), and
// tiny counts must not underflow the fan arithmetic.
func TestHeteroScenarioRaggedCounts(t *testing.T) {
	for _, tasks := range []int{1, 3, 8, 9, 501} {
		cfg := smallConfig()
		cfg.Scenarios = []string{ScenarioHetero}
		cfg.Shards = []int{1}
		cfg.Tasks = tasks
		pts, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if p.Executed != uint64(tasks) {
				t.Errorf("hetero tasks=%d %s: executed %d", tasks, p.Mode, p.Executed)
			}
		}
	}
}

// The chaos scenario must produce a clean and a faulty point per cell;
// the faulty one carries the overhead and survival verdicts, the clean
// one executes every task.
func TestChaosScenarioCells(t *testing.T) {
	cfg := smallConfig()
	cfg.Scenarios = []string{ScenarioChaos}
	cfg.Shards = []int{1}
	cfg.Tasks = 600
	pts, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2; len(pts) != want { // 2 modes × (clean, faulty)
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if !p.Faulty {
			if p.Executed != uint64(cfg.Tasks) {
				t.Errorf("clean arm %s: executed %d, want %d", p.Mode, p.Executed, cfg.Tasks)
			}
			if p.ChaosOverhead != 0 || p.ChaosSurvival != 0 {
				t.Errorf("clean arm %s carries faulty-arm verdicts: %+v", p.Mode, p)
			}
			continue
		}
		if p.ChaosSurvival != 1 {
			t.Errorf("faulty arm %s: survival %v, want 1 (all tasks terminal)", p.Mode, p.ChaosSurvival)
		}
		if p.ChaosOverhead <= 0 {
			t.Errorf("faulty arm %s: no overhead ratio measured", p.Mode)
		}
		if p.Executed > uint64(cfg.Tasks) {
			t.Errorf("faulty arm %s: executed %d over the %d submitted", p.Mode, p.Executed, cfg.Tasks)
		}
	}
}
