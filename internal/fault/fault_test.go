package fault

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFiresOnceAtTime(t *testing.T) {
	in := NewInjector(10, 0.25, 0.1)
	if _, _, fired := in.Check(9.99, 100); fired {
		t.Fatalf("must not fire early")
	}
	lo, hi, fired := in.Check(10, 100)
	if !fired || lo != 25 || hi != 35 {
		t.Fatalf("fired=%v block=[%d,%d)", fired, lo, hi)
	}
	if _, _, again := in.Check(11, 100); again {
		t.Fatalf("must fire at most once")
	}
	if !in.Fired() {
		t.Fatalf("Fired() wrong")
	}
	in.Reset()
	if in.Fired() {
		t.Fatalf("Reset failed")
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if _, _, fired := in.Check(1e9, 10); fired {
		t.Fatalf("nil injector fired")
	}
}

func TestBlockClamped(t *testing.T) {
	in := NewInjector(0, 0.99, 0.5)
	lo, hi, fired := in.Check(0, 10)
	if !fired || hi > 10 || lo >= hi {
		t.Fatalf("block [%d,%d) out of range", lo, hi)
	}
	in2 := NewInjector(0, 0.5, 0)
	lo, hi, _ = in2.Check(0, 10)
	if hi-lo < 1 {
		t.Fatalf("zero-size block must clamp to one element")
	}
}

func TestCorrupt(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	Corrupt(v, 1, 3)
	if v[0] != 1 || v[3] != 4 {
		t.Fatalf("corruption leaked outside block")
	}
	if v[1] == 2 || v[2] == 3 {
		t.Fatalf("block not corrupted: %v", v)
	}
}

func TestString(t *testing.T) {
	if !strings.Contains(NewInjector(30, 0.25, 0.02).String(), "DUE@30.00s") {
		t.Fatalf("String: %s", NewInjector(30, 0.25, 0.02).String())
	}
}

// Property: the returned block is always a valid, non-empty range.
func TestQuickBlockValid(t *testing.T) {
	f := func(timeRaw, startRaw, fracRaw uint8, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		in := NewInjector(float64(timeRaw), float64(startRaw)/255, float64(fracRaw)/255)
		lo, hi, fired := in.Check(float64(timeRaw), n)
		if !fired {
			return false // now >= TimeS always fires the first time
		}
		return lo >= 0 && lo < hi && hi <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
