// Package fault models Detected-and-Uncorrected Errors (DUEs): the error
// class the paper's Section 4 targets. Commodity hardware (ECC, parity)
// *detects* these errors and reports which memory region died, but cannot
// correct them; recovering the data is the software's problem — which is
// exactly what the FEIR/AFEIR schemes in package solver do.
package fault

import "fmt"

// Injector fires one DUE at a configured simulated time, destroying a block
// of a protected vector. It is deterministic: given the same configuration
// and time stream, the same fault fires at the same place.
type Injector struct {
	// TimeS is the simulated time at which the DUE strikes.
	TimeS float64
	// BlockStartFrac and BlockFrac locate the lost block as fractions of
	// the protected vector: [start, start+size).
	BlockStartFrac float64
	BlockFrac      float64
	fired          bool
}

// NewInjector builds an injector for one DUE at timeS destroying a block of
// blockFrac of the vector starting at startFrac.
func NewInjector(timeS, startFrac, blockFrac float64) *Injector {
	return &Injector{TimeS: timeS, BlockStartFrac: startFrac, BlockFrac: blockFrac}
}

// Check reports whether the DUE fires at simulated time now for a vector of
// length n, returning the lost index range [lo, hi). It fires at most once.
func (in *Injector) Check(now float64, n int) (lo, hi int, fired bool) {
	if in == nil || in.fired || now < in.TimeS {
		return 0, 0, false
	}
	in.fired = true
	lo = int(in.BlockStartFrac * float64(n))
	hi = lo + int(in.BlockFrac*float64(n))
	if hi <= lo {
		hi = lo + 1
	}
	if hi > n {
		hi = n
	}
	if lo >= n {
		lo, hi = n-1, n
	}
	return lo, hi, true
}

// Fired reports whether the DUE has already struck.
func (in *Injector) Fired() bool { return in != nil && in.fired }

// Reset re-arms the injector.
func (in *Injector) Reset() { in.fired = false }

// Corrupt overwrites the lost block with a poison pattern, as a DUE leaves
// unreadable data behind. The solver must not rely on the old values.
func Corrupt(v []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		v[i] = poisonValue
	}
}

// poisonValue is deliberately absurd so accidental use of dead data shows.
const poisonValue = 1e300

// String implements fmt.Stringer.
func (in *Injector) String() string {
	return fmt.Sprintf("DUE@%.2fs block[%.0f%%,%.0f%%)", in.TimeS,
		in.BlockStartFrac*100, (in.BlockStartFrac+in.BlockFrac)*100)
}
