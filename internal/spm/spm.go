// Package spm models the per-tile ScratchPad Memories and their DMA engines
// that, together with the caches, form the hybrid memory hierarchy of the
// paper's Section 2 (Alvarez et al., ISCA'15).
//
// An SPM is software-managed storage: the compiler (package compilerpass)
// maps strided references to it through tiling software caches, and a DMA
// engine moves tiles between DRAM and the SPM in bulk. SPM accesses are
// cheaper than cache accesses — no tag array, no TLB, no coherence — which
// is where the energy advantage of Figure 1 comes from, while DMA bulk
// transfers cut the per-line request/reply message overhead on the NoC,
// which is where the traffic advantage comes from.
package spm

import "fmt"

// Config describes one scratchpad and its DMA engine.
type Config struct {
	// SizeBytes is the SPM capacity (per tile).
	SizeBytes int
	// AccessCycles is the load/store latency to the SPM array.
	AccessCycles int
	// AccessEnergyPJ is the per-access energy; lower than a same-size cache
	// because there is no tag+TLB lookup (the paper's premise).
	AccessEnergyPJ float64
	// DMASetupCycles is the fixed cost of programming one DMA transfer.
	DMASetupCycles int
	// DMABytesPerCycle is the DMA streaming bandwidth.
	DMABytesPerCycle float64
	// DMAEnergyPJPerByte is DMA transfer energy per byte moved (on-chip
	// share only; DRAM energy is charged by package dram).
	DMAEnergyPJPerByte float64
}

// DefaultConfig returns the 32 KiB SPM with a streaming DMA engine used by
// the Figure-1 tiles, sized to match the L1 it sits beside.
func DefaultConfig() Config {
	return Config{
		SizeBytes:          32 << 10,
		AccessCycles:       2,  // vs 3 for the tagged L1
		AccessEnergyPJ:     12, // vs 40 for the tagged L1
		DMASetupCycles:     24,
		DMABytesPerCycle:   8,
		DMAEnergyPJPerByte: 0.35,
	}
}

// Region is a mapped address range inside an SPM.
type Region struct {
	Base uint64 // DRAM base address the region mirrors
	Size int    // bytes
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+uint64(r.Size)
}

// Stats holds SPM + DMA counters for one tile.
type Stats struct {
	Accesses     uint64
	EnergyPJ     float64
	DMATransfers uint64
	DMABytes     uint64
	DMACycles    uint64
	DMAEnergyPJ  float64
}

// SPM is one tile's scratchpad with its current software mapping.
type SPM struct {
	cfg     Config
	used    int
	regions []Region
	stats   Stats
}

// New creates an SPM.
func New(cfg Config) *SPM {
	if cfg.SizeBytes <= 0 {
		panic("spm: non-positive size")
	}
	return &SPM{cfg: cfg}
}

// Config returns the SPM configuration.
func (s *SPM) Config() Config { return s.cfg }

// Stats returns a snapshot of the counters.
func (s *SPM) Stats() Stats { return s.stats }

// Free returns the unmapped capacity in bytes.
func (s *SPM) Free() int { return s.cfg.SizeBytes - s.used }

// Map reserves size bytes mirroring the DRAM range starting at base, as the
// compiler-generated tiling software cache does at tile entry. It fails if
// capacity is exhausted.
func (s *SPM) Map(base uint64, size int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("spm: non-positive mapping size %d", size)
	}
	if size > s.Free() {
		return Region{}, fmt.Errorf("spm: mapping %dB exceeds free %dB", size, s.Free())
	}
	r := Region{Base: base, Size: size}
	s.regions = append(s.regions, r)
	s.used += size
	return r, nil
}

// Unmap releases a region previously returned by Map.
func (s *SPM) Unmap(r Region) {
	for i, q := range s.regions {
		if q == r {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			s.used -= r.Size
			return
		}
	}
}

// UnmapAll releases every mapping (tile exit).
func (s *SPM) UnmapAll() {
	s.regions = s.regions[:0]
	s.used = 0
}

// Lookup reports whether addr is currently mapped to this SPM. This is the
// question the coherence filter of package coherence asks on every
// unknown-alias access.
func (s *SPM) Lookup(addr uint64) (Region, bool) {
	for _, r := range s.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns the current mappings (read-only use).
func (s *SPM) Regions() []Region { return s.regions }

// Access models one load/store served by the SPM array and returns its
// latency in cycles.
func (s *SPM) Access() int {
	s.stats.Accesses++
	s.stats.EnergyPJ += s.cfg.AccessEnergyPJ
	return s.cfg.AccessCycles
}

// DMA models one bulk transfer of size bytes between DRAM and the SPM and
// returns the cycles the engine occupies. The DRAM-side latency/energy is
// charged separately by the caller via the dram controller; double buffering
// means the caller usually overlaps this cost with compute.
func (s *SPM) DMA(size int) int {
	if size <= 0 {
		return 0
	}
	cycles := s.cfg.DMASetupCycles + int(float64(size)/s.cfg.DMABytesPerCycle)
	s.stats.DMATransfers++
	s.stats.DMABytes += uint64(size)
	s.stats.DMACycles += uint64(cycles)
	s.stats.DMAEnergyPJ += float64(size) * s.cfg.DMAEnergyPJPerByte
	return cycles
}

// Reset zeroes counters and mappings.
func (s *SPM) Reset() {
	s.UnmapAll()
	s.stats = Stats{}
}
