package spm

import (
	"testing"
	"testing/quick"
)

func TestMapUnmap(t *testing.T) {
	s := New(DefaultConfig())
	r, err := s.Map(0x1000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if s.Free() != s.Config().SizeBytes-1024 {
		t.Fatalf("Free = %d", s.Free())
	}
	if _, ok := s.Lookup(0x1000 + 512); !ok {
		t.Fatalf("mapped address must be found")
	}
	if _, ok := s.Lookup(0x1000 + 1024); ok {
		t.Fatalf("end is exclusive")
	}
	s.Unmap(r)
	if s.Free() != s.Config().SizeBytes {
		t.Fatalf("Unmap must release capacity")
	}
	if _, ok := s.Lookup(0x1200); ok {
		t.Fatalf("lookup after unmap must miss")
	}
}

func TestMapOverCapacity(t *testing.T) {
	s := New(DefaultConfig())
	if _, err := s.Map(0, s.Config().SizeBytes+1); err == nil {
		t.Fatalf("oversized mapping must fail")
	}
	if _, err := s.Map(0, s.Config().SizeBytes); err != nil {
		t.Fatalf("exact-fit mapping must work: %v", err)
	}
	if _, err := s.Map(1<<20, 1); err == nil {
		t.Fatalf("no room left, must fail")
	}
}

func TestMapRejectsNonPositive(t *testing.T) {
	s := New(DefaultConfig())
	if _, err := s.Map(0, 0); err == nil {
		t.Fatalf("zero-size mapping must fail")
	}
	if _, err := s.Map(0, -5); err == nil {
		t.Fatalf("negative mapping must fail")
	}
}

func TestAccessCosts(t *testing.T) {
	s := New(DefaultConfig())
	lat := s.Access()
	if lat != s.Config().AccessCycles {
		t.Fatalf("latency = %d", lat)
	}
	if s.Stats().Accesses != 1 || s.Stats().EnergyPJ != s.Config().AccessEnergyPJ {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestSPMCheaperThanCacheDefaults(t *testing.T) {
	// The premise of the hybrid hierarchy: an SPM access is cheaper in both
	// time and energy than a same-size L1 access (no tags, no TLB).
	cfg := DefaultConfig()
	if cfg.AccessCycles >= 3 {
		t.Fatalf("SPM latency must undercut L1's 3 cycles, got %d", cfg.AccessCycles)
	}
	if cfg.AccessEnergyPJ >= 25 {
		t.Fatalf("SPM energy must undercut L1's 25 pJ, got %v", cfg.AccessEnergyPJ)
	}
}

func TestDMACosts(t *testing.T) {
	s := New(DefaultConfig())
	cyc := s.DMA(4096)
	want := s.Config().DMASetupCycles + int(4096/s.Config().DMABytesPerCycle)
	if cyc != want {
		t.Fatalf("DMA cycles = %d, want %d", cyc, want)
	}
	st := s.Stats()
	if st.DMATransfers != 1 || st.DMABytes != 4096 {
		t.Fatalf("stats %+v", st)
	}
	if s.DMA(0) != 0 {
		t.Fatalf("zero DMA is free")
	}
}

func TestDMABulkAmortisation(t *testing.T) {
	// One 4 KiB DMA must be cheaper than 64 per-line (64B) transfers — the
	// effect that reduces NoC/DRAM overhead in Figure 1.
	s := New(DefaultConfig())
	bulk := s.DMA(4096)
	perLine := 0
	for i := 0; i < 64; i++ {
		perLine += s.DMA(64)
	}
	if bulk >= perLine {
		t.Fatalf("bulk DMA (%d) must beat 64 line DMAs (%d)", bulk, perLine)
	}
}

func TestUnmapAllAndReset(t *testing.T) {
	s := New(DefaultConfig())
	s.Map(0, 128)
	s.Map(4096, 128)
	s.UnmapAll()
	if s.Free() != s.Config().SizeBytes || len(s.Regions()) != 0 {
		t.Fatalf("UnmapAll failed")
	}
	s.Access()
	s.Reset()
	if s.Stats().Accesses != 0 {
		t.Fatalf("Reset failed")
	}
}

// Property: capacity accounting is exact under any interleaving of maps and
// unmaps, and Lookup agrees with the region list.
func TestQuickCapacityAccounting(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New(Config{SizeBytes: 4096, AccessCycles: 1, AccessEnergyPJ: 1,
			DMASetupCycles: 1, DMABytesPerCycle: 8, DMAEnergyPJPerByte: 0.1})
		var live []Region
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := int(op%512) + 1
				base := uint64(op) * 8192
				r, err := s.Map(base, size)
				if err == nil {
					live = append(live, r)
				}
			} else {
				r := live[int(op)%len(live)]
				s.Unmap(r)
				for i, q := range live {
					if q == r {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
			sum := 0
			for _, r := range live {
				sum += r.Size
			}
			if s.Free() != 4096-sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
