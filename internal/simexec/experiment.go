package simexec

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/rsu"
	"repro/internal/stats"
	"repro/internal/tdg"
)

// Fig2Row is one variant's outcome in the Section-3.1 experiment, expressed
// relative to the static baseline (values > 1 mean the variant wins).
type Fig2Row struct {
	Variant        string
	Speedup        float64
	EDPImprovement float64
	MakespanS      float64
	EnergyJ        float64
	ReconOverheadS float64
}

// Fig2Config parameterises the experiment.
type Fig2Config struct {
	// Cores is the machine width (the paper evaluates 32).
	Cores int
	// Blocks is the Cholesky tiling dimension.
	Blocks int
	// UnitCostCycles scales task weights (potrf = 1 unit).
	UnitCostCycles float64
	// CritSlack widens the critical set for the criticality policy.
	CritSlack float64
	// LowFrac is the deep-slack threshold (see simexec.Config.LowFrac).
	LowFrac float64
}

// DefaultFig2Config matches the paper's 32-core setup at the balanced
// problem size where the criticality-aware speedup lands on the paper's
// reported +6.6 %.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{Cores: 32, Blocks: 16, UnitCostCycles: 2e6, CritSlack: 0.12}
}

// Fig2SweepBlocks are the Cholesky sizes the sweep evaluates. Small sizes
// are latency-bound (criticality pays most: EDP gains reach the paper's
// +20 %); large ones are throughput-bound (gains vanish, as expected).
func Fig2SweepBlocks() []int { return []int{9, 12, 16, 20, 24} }

// Fig2SweepRow is one (size, variant) outcome of the sweep.
type Fig2SweepRow struct {
	Blocks int
	Rows   []Fig2Row
}

// RunFig2Sweep runs the experiment across problem sizes; the paper's
// headline numbers are the maxima over the sweep ("improvements ... that
// reach 6.6% and 20.0%").
func RunFig2Sweep(cores int) ([]Fig2SweepRow, error) {
	var out []Fig2SweepRow
	for _, b := range Fig2SweepBlocks() {
		cfg := Fig2Config{Cores: cores, Blocks: b, UnitCostCycles: 2e6, CritSlack: 0.12}
		rows, err := RunFig2(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig2SweepRow{Blocks: b, Rows: rows})
	}
	return out, nil
}

// Fig2SweepTable renders the sweep with the reach-maxima footer.
func Fig2SweepTable(sweep []Fig2SweepRow) *stats.Table {
	t := stats.NewTable(
		"§3.1 sweep — criticality-aware DVFS vs static across Cholesky sizes (RSU variant)",
		"blocks", "speedup", "edp-improvement", "sw-speedup", "sw-edp")
	var maxSp, maxEDP float64
	for _, s := range sweep {
		rsuRow, swRow := s.Rows[2], s.Rows[1]
		if rsuRow.Speedup > maxSp {
			maxSp = rsuRow.Speedup
		}
		if rsuRow.EDPImprovement > maxEDP {
			maxEDP = rsuRow.EDPImprovement
		}
		t.AddRow(fmt.Sprintf("%d", s.Blocks),
			fmt.Sprintf("%.3f", rsuRow.Speedup),
			fmt.Sprintf("%.3f", rsuRow.EDPImprovement),
			fmt.Sprintf("%.3f", swRow.Speedup),
			fmt.Sprintf("%.3f", swRow.EDPImprovement))
	}
	t.AddRow("max", fmt.Sprintf("%.3f", maxSp), fmt.Sprintf("%.3f", maxEDP), "", "")
	return t
}

// RunFig2 executes the three variants of the Section-3.1 study on a blocked
// Cholesky TDG: static all-nominal, criticality-aware with software DVFS,
// and criticality-aware with the RSU. The chip power budget equals all
// cores busy at nominal, so turbo must be funded by running non-critical
// tasks at the low point — exactly the trade the paper describes.
func RunFig2(cfg Fig2Config) ([]Fig2Row, error) {
	g := tdg.Cholesky(cfg.Blocks, cfg.UnitCostCycles)
	table := power.DefaultTable()
	model := power.DefaultModel()
	nominal, _ := table.ByName("nominal")
	nomBusy := model.DynPower(nominal) + model.StatPower(nominal)
	budget := power.Budget{WattsCap: nomBusy * float64(cfg.Cores)}

	static, err := Run(g, Config{
		Cores: cfg.Cores, Table: table, Model: model,
		Recon: rsu.NewFixed(nominal), Policy: Static,
	})
	if err != nil {
		return nil, fmt.Errorf("simexec: static variant: %w", err)
	}

	variants := []struct {
		name  string
		recon rsu.Reconfigurator
	}{
		{"cats+software-dvfs", rsu.NewSoftwareDVFS(cfg.Cores, table, model, budget)},
		{"cats+rsu", rsu.NewRSU(cfg.Cores, table, model, budget)},
	}
	rows := []Fig2Row{{
		Variant: "static", Speedup: 1, EDPImprovement: 1,
		MakespanS: static.MakespanS, EnergyJ: static.EnergyJ,
	}}
	for _, v := range variants {
		r, err := Run(g, Config{
			Cores: cfg.Cores, Table: table, Model: model,
			Recon: v.recon, Policy: CriticalityAware,
			CritSlack: cfg.CritSlack, LowFrac: cfg.LowFrac,
		})
		if err != nil {
			return nil, fmt.Errorf("simexec: %s variant: %w", v.name, err)
		}
		rows = append(rows, Fig2Row{
			Variant:        v.name,
			Speedup:        stats.Speedup(static.MakespanS, r.MakespanS),
			EDPImprovement: stats.Speedup(static.EDP, r.EDP),
			MakespanS:      r.MakespanS,
			EnergyJ:        r.EnergyJ,
			ReconOverheadS: r.ReconOverheadS,
		})
	}
	return rows, nil
}

// Fig2Table renders the experiment as a table.
func Fig2Table(rows []Fig2Row) *stats.Table {
	t := stats.NewTable(
		"Figure 2 / §3.1 — criticality-aware DVFS on a blocked Cholesky TDG",
		"variant", "speedup", "edp-improvement", "makespan-s", "energy-j", "recon-overhead-s")
	for _, r := range rows {
		t.AddRow(r.Variant,
			fmt.Sprintf("%.3f", r.Speedup),
			fmt.Sprintf("%.3f", r.EDPImprovement),
			fmt.Sprintf("%.5f", r.MakespanS),
			fmt.Sprintf("%.4f", r.EnergyJ),
			fmt.Sprintf("%.6f", r.ReconOverheadS))
	}
	return t
}

// RSUScalingRow captures the RSU-vs-software gap at one core count.
type RSUScalingRow struct {
	Cores            int
	SoftwareSpeedup  float64
	RSUSpeedup       float64
	SoftwareOverhead float64
	RSUOverhead      float64
}

// RunRSUScaling sweeps core counts to show the software reconfiguration
// cost growing with the machine while the RSU's stays flat — the motivation
// for the hardware unit in Figure 2.
func RunRSUScaling(coreCounts []int, blocks int, unitCost float64) ([]RSUScalingRow, error) {
	var rows []RSUScalingRow
	for _, cores := range coreCounts {
		cfg := Fig2Config{Cores: cores, Blocks: blocks, UnitCostCycles: unitCost, CritSlack: 0.12, LowFrac: 0.45}
		res, err := RunFig2(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RSUScalingRow{
			Cores:            cores,
			SoftwareSpeedup:  res[1].Speedup,
			RSUSpeedup:       res[2].Speedup,
			SoftwareOverhead: res[1].ReconOverheadS,
			RSUOverhead:      res[2].ReconOverheadS,
		})
	}
	return rows, nil
}

// RSUScalingTable renders the sweep.
func RSUScalingTable(rows []RSUScalingRow) *stats.Table {
	t := stats.NewTable(
		"RSU vs software reconfiguration across machine sizes",
		"cores", "sw-speedup", "rsu-speedup", "sw-overhead-s", "rsu-overhead-s")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.3f", r.SoftwareSpeedup),
			fmt.Sprintf("%.3f", r.RSUSpeedup),
			fmt.Sprintf("%.6f", r.SoftwareOverhead),
			fmt.Sprintf("%.6f", r.RSUOverhead))
	}
	return t
}
