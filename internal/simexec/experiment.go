package simexec

import (
	"context"
	"fmt"

	"repro/internal/power"
	"repro/internal/rsu"
	"repro/internal/stats"
	"repro/internal/tdg"
	"repro/raa"
)

// Fig2Row is one variant's outcome in the Section-3.1 experiment, expressed
// relative to the static baseline (values > 1 mean the variant wins).
type Fig2Row struct {
	Variant        string
	Speedup        float64
	EDPImprovement float64
	MakespanS      float64
	EnergyJ        float64
	ReconOverheadS float64
}

// Variant names of the Section-3.1 study, in RunFig2's row order.
const (
	VariantStatic   = "static"
	VariantSoftware = "cats+software-dvfs"
	VariantRSU      = "cats+rsu"
)

// VariantRow finds a variant's row by name (zero Fig2Row if absent).
func VariantRow(rows []Fig2Row, variant string) Fig2Row {
	for _, r := range rows {
		if r.Variant == variant {
			return r
		}
	}
	return Fig2Row{}
}

// Fig2Config parameterises the experiment.
type Fig2Config struct {
	// Cores is the machine width (the paper evaluates 32).
	Cores int
	// Blocks is the Cholesky tiling dimension.
	Blocks int
	// UnitCostCycles scales task weights (potrf = 1 unit).
	UnitCostCycles float64
	// CritSlack widens the critical set for the criticality policy.
	CritSlack float64
	// LowFrac is the deep-slack threshold (see simexec.Config.LowFrac).
	LowFrac float64
}

// DefaultFig2Config matches the paper's 32-core setup at the balanced
// problem size where the criticality-aware speedup lands on the paper's
// reported +6.6 %.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{Cores: 32, Blocks: 16, UnitCostCycles: 2e6, CritSlack: 0.12}
}

// Fig2SweepBlocks are the Cholesky sizes the sweep evaluates. Small sizes
// are latency-bound (criticality pays most: EDP gains reach the paper's
// +20 %); large ones are throughput-bound (gains vanish, as expected).
func Fig2SweepBlocks() []int { return []int{9, 12, 16, 20, 24} }

// Fig2SweepRow is one (size, variant) outcome of the sweep.
type Fig2SweepRow struct {
	Blocks int
	Rows   []Fig2Row
}

// RunFig2Sweep runs the experiment across problem sizes; the paper's
// headline numbers are the maxima over the sweep ("improvements ... that
// reach 6.6% and 20.0%"). Cancellation is observed between sizes.
func RunFig2Sweep(ctx context.Context, cores int) ([]Fig2SweepRow, error) {
	var out []Fig2SweepRow
	for _, b := range Fig2SweepBlocks() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := Fig2Config{Cores: cores, Blocks: b, UnitCostCycles: 2e6, CritSlack: 0.12}
		rows, err := RunFig2(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig2SweepRow{Blocks: b, Rows: rows})
	}
	return out, nil
}

// Fig2SweepTable renders the sweep with the reach-maxima footer.
func Fig2SweepTable(sweep []Fig2SweepRow) *stats.Table {
	t := stats.NewTable(
		"§3.1 sweep — criticality-aware DVFS vs static across Cholesky sizes (RSU variant)",
		"blocks", "speedup", "edp-improvement", "sw-speedup", "sw-edp")
	var maxSp, maxEDP float64
	for _, s := range sweep {
		rsuRow, swRow := VariantRow(s.Rows, VariantRSU), VariantRow(s.Rows, VariantSoftware)
		if rsuRow.Speedup > maxSp {
			maxSp = rsuRow.Speedup
		}
		if rsuRow.EDPImprovement > maxEDP {
			maxEDP = rsuRow.EDPImprovement
		}
		t.AddRow(fmt.Sprintf("%d", s.Blocks),
			fmt.Sprintf("%.3f", rsuRow.Speedup),
			fmt.Sprintf("%.3f", rsuRow.EDPImprovement),
			fmt.Sprintf("%.3f", swRow.Speedup),
			fmt.Sprintf("%.3f", swRow.EDPImprovement))
	}
	t.AddRow("max", fmt.Sprintf("%.3f", maxSp), fmt.Sprintf("%.3f", maxEDP), "", "")
	return t
}

// RunFig2 executes the three variants of the Section-3.1 study on a blocked
// Cholesky TDG: static all-nominal, criticality-aware with software DVFS,
// and criticality-aware with the RSU. The chip power budget equals all
// cores busy at nominal, so turbo must be funded by running non-critical
// tasks at the low point — exactly the trade the paper describes.
func RunFig2(cfg Fig2Config) ([]Fig2Row, error) {
	g := tdg.Cholesky(cfg.Blocks, cfg.UnitCostCycles)
	table := power.DefaultTable()
	model := power.DefaultModel()
	nominal, _ := table.ByName("nominal")
	nomBusy := model.DynPower(nominal) + model.StatPower(nominal)
	budget := power.Budget{WattsCap: nomBusy * float64(cfg.Cores)}

	static, err := Run(g, Config{
		Cores: cfg.Cores, Table: table, Model: model,
		Recon: rsu.NewFixed(nominal), Policy: Static,
	})
	if err != nil {
		return nil, fmt.Errorf("simexec: static variant: %w", err)
	}

	variants := []struct {
		name  string
		recon rsu.Reconfigurator
	}{
		{VariantSoftware, rsu.NewSoftwareDVFS(cfg.Cores, table, model, budget)},
		{VariantRSU, rsu.NewRSU(cfg.Cores, table, model, budget)},
	}
	rows := []Fig2Row{{
		Variant: VariantStatic, Speedup: 1, EDPImprovement: 1,
		MakespanS: static.MakespanS, EnergyJ: static.EnergyJ,
	}}
	for _, v := range variants {
		r, err := Run(g, Config{
			Cores: cfg.Cores, Table: table, Model: model,
			Recon: v.recon, Policy: CriticalityAware,
			CritSlack: cfg.CritSlack, LowFrac: cfg.LowFrac,
		})
		if err != nil {
			return nil, fmt.Errorf("simexec: %s variant: %w", v.name, err)
		}
		rows = append(rows, Fig2Row{
			Variant:        v.name,
			Speedup:        stats.Speedup(static.MakespanS, r.MakespanS),
			EDPImprovement: stats.Speedup(static.EDP, r.EDP),
			MakespanS:      r.MakespanS,
			EnergyJ:        r.EnergyJ,
			ReconOverheadS: r.ReconOverheadS,
		})
	}
	return rows, nil
}

// Fig2Table renders the experiment as a table.
func Fig2Table(rows []Fig2Row) *stats.Table {
	t := stats.NewTable(
		"Figure 2 / §3.1 — criticality-aware DVFS on a blocked Cholesky TDG",
		"variant", "speedup", "edp-improvement", "makespan-s", "energy-j", "recon-overhead-s")
	for _, r := range rows {
		t.AddRow(r.Variant,
			fmt.Sprintf("%.3f", r.Speedup),
			fmt.Sprintf("%.3f", r.EDPImprovement),
			fmt.Sprintf("%.5f", r.MakespanS),
			fmt.Sprintf("%.4f", r.EnergyJ),
			fmt.Sprintf("%.6f", r.ReconOverheadS))
	}
	return t
}

// RSUScalingRow captures the RSU-vs-software gap at one core count.
type RSUScalingRow struct {
	Cores            int
	SoftwareSpeedup  float64
	RSUSpeedup       float64
	SoftwareOverhead float64
	RSUOverhead      float64
}

// RunRSUScaling sweeps core counts to show the software reconfiguration
// cost growing with the machine while the RSU's stays flat — the motivation
// for the hardware unit in Figure 2.
func RunRSUScaling(ctx context.Context, coreCounts []int, blocks int, unitCost float64) ([]RSUScalingRow, error) {
	var rows []RSUScalingRow
	for _, cores := range coreCounts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := Fig2Config{Cores: cores, Blocks: blocks, UnitCostCycles: unitCost, CritSlack: 0.12, LowFrac: 0.45}
		res, err := RunFig2(cfg)
		if err != nil {
			return nil, err
		}
		sw, hw := VariantRow(res, VariantSoftware), VariantRow(res, VariantRSU)
		rows = append(rows, RSUScalingRow{
			Cores:            cores,
			SoftwareSpeedup:  sw.Speedup,
			RSUSpeedup:       hw.Speedup,
			SoftwareOverhead: sw.ReconOverheadS,
			RSUOverhead:      hw.ReconOverheadS,
		})
	}
	return rows, nil
}

// RSUScalingTable renders the sweep.
func RSUScalingTable(rows []RSUScalingRow) *stats.Table {
	t := stats.NewTable(
		"RSU vs software reconfiguration across machine sizes",
		"cores", "sw-speedup", "rsu-speedup", "sw-overhead-s", "rsu-overhead-s")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.3f", r.SoftwareSpeedup),
			fmt.Sprintf("%.3f", r.RSUSpeedup),
			fmt.Sprintf("%.6f", r.SoftwareOverhead),
			fmt.Sprintf("%.6f", r.RSUOverhead))
	}
	return t
}

// Spec configures the criticality-dvfs experiment through the raa registry.
type Spec struct {
	// Cores is the machine width (the paper evaluates 32).
	Cores int `json:"cores"`
	// Blocks is the Cholesky tiling dimension.
	Blocks int `json:"blocks"`
	// UnitCostCycles scales task weights (potrf = 1 unit).
	UnitCostCycles float64 `json:"unit_cost_cycles"`
	// CritSlack widens the critical set for the criticality policy.
	CritSlack float64 `json:"crit_slack"`
	// LowFrac is the deep-slack threshold.
	LowFrac float64 `json:"low_frac"`
	// Sweep additionally runs the problem-size sweep whose maxima are the
	// paper's headline numbers.
	Sweep bool `json:"sweep"`
}

type experiment struct{}

func init() { raa.Register(experiment{}) }

func (experiment) Name() string { return "criticality-dvfs" }

func (experiment) Describe() string {
	return "Figure 2 / §3.1: criticality-aware DVFS, RSU vs software, on a Cholesky TDG"
}

func (experiment) Aliases() []string { return []string{"fig2"} }

func (experiment) DefaultSpec() raa.Spec {
	d := DefaultFig2Config()
	return Spec{Cores: d.Cores, Blocks: d.Blocks, UnitCostCycles: d.UnitCostCycles,
		CritSlack: d.CritSlack, LowFrac: d.LowFrac, Sweep: true}
}

func (experiment) QuickSpec() raa.Spec {
	d := DefaultFig2Config()
	return Spec{Cores: d.Cores, Blocks: 10, UnitCostCycles: d.UnitCostCycles,
		CritSlack: d.CritSlack, LowFrac: d.LowFrac}
}

func (e experiment) Run(ctx context.Context, spec raa.Spec) (*raa.Result, error) {
	s, ok := spec.(Spec)
	if !ok {
		return nil, fmt.Errorf("simexec: spec type %T, want simexec.Spec", spec)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := Fig2Config{Cores: s.Cores, Blocks: s.Blocks, UnitCostCycles: s.UnitCostCycles,
		CritSlack: s.CritSlack, LowFrac: s.LowFrac}
	rows, err := RunFig2(cfg)
	if err != nil {
		return nil, err
	}
	res := &raa.Result{
		Experiment: e.Name(),
		Spec:       s,
		Metrics:    map[string]float64{},
		Tables:     []*stats.Table{Fig2Table(rows)},
	}
	for _, r := range rows {
		switch r.Variant {
		case VariantSoftware:
			res.Metrics["software_speedup"] = r.Speedup
			res.Metrics["software_edp_improvement"] = r.EDPImprovement
		case VariantRSU:
			res.Metrics["rsu_speedup"] = r.Speedup
			res.Metrics["rsu_edp_improvement"] = r.EDPImprovement
			res.Metrics["rsu_recon_overhead_s"] = r.ReconOverheadS
		case VariantStatic:
			res.Metrics["static_makespan_s"] = r.MakespanS
			res.Metrics["static_energy_j"] = r.EnergyJ
		}
	}
	if s.Sweep {
		sweep, err := RunFig2Sweep(ctx, s.Cores)
		if err != nil {
			return nil, err
		}
		res.Tables = append(res.Tables, Fig2SweepTable(sweep))
		var maxSp, maxEDP float64
		for _, row := range sweep {
			r := VariantRow(row.Rows, VariantRSU)
			if r.Speedup > maxSp {
				maxSp = r.Speedup
			}
			if r.EDPImprovement > maxEDP {
				maxEDP = r.EDPImprovement
			}
		}
		res.Metrics["sweep_max_rsu_speedup"] = maxSp
		res.Metrics["sweep_max_rsu_edp_improvement"] = maxEDP
	}
	res.Notes = append(res.Notes,
		"paper: improvements over static reach 6.6% (perf) and 20.0% (EDP)")
	return res, nil
}

// ScalingSpec configures the rsu-scaling experiment.
type ScalingSpec struct {
	// Cores are the machine sizes swept.
	Cores []int `json:"cores"`
	// Blocks is the Cholesky tiling dimension.
	Blocks int `json:"blocks"`
	// UnitCostCycles scales task weights.
	UnitCostCycles float64 `json:"unit_cost_cycles"`
}

type scalingExperiment struct{}

func init() { raa.Register(scalingExperiment{}) }

func (scalingExperiment) Name() string { return "rsu-scaling" }

func (scalingExperiment) Describe() string {
	return "§3.1: RSU vs software reconfiguration overhead across machine sizes"
}

func (scalingExperiment) Aliases() []string { return []string{"rsu"} }

func (scalingExperiment) DefaultSpec() raa.Spec {
	return ScalingSpec{Cores: []int{16, 32, 64, 128}, Blocks: 16, UnitCostCycles: 2e6}
}

func (scalingExperiment) QuickSpec() raa.Spec {
	return ScalingSpec{Cores: []int{16, 32}, Blocks: 10, UnitCostCycles: 2e6}
}

func (e scalingExperiment) Run(ctx context.Context, spec raa.Spec) (*raa.Result, error) {
	s, ok := spec.(ScalingSpec)
	if !ok {
		return nil, fmt.Errorf("simexec: spec type %T, want simexec.ScalingSpec", spec)
	}
	rows, err := RunRSUScaling(ctx, s.Cores, s.Blocks, s.UnitCostCycles)
	if err != nil {
		return nil, err
	}
	res := &raa.Result{
		Experiment: e.Name(),
		Spec:       s,
		Metrics:    map[string]float64{},
		Tables:     []*stats.Table{RSUScalingTable(rows)},
	}
	for _, r := range rows {
		p := fmt.Sprintf("cores_%d", r.Cores)
		res.Metrics[p+"_software_overhead_s"] = r.SoftwareOverhead
		res.Metrics[p+"_rsu_overhead_s"] = r.RSUOverhead
		res.Metrics[p+"_software_speedup"] = r.SoftwareSpeedup
		res.Metrics[p+"_rsu_speedup"] = r.RSUSpeedup
	}
	res.Notes = append(res.Notes,
		"software reconfiguration cost grows with the machine; the RSU's stays flat")
	return res, nil
}
