// Package simexec executes a task dependency graph on a modelled manycore
// with per-core DVFS — the experimental vehicle for the paper's Section 3.1:
// criticality-aware frequency scaling with hardware (RSU) or software
// reconfiguration, against a static all-nominal baseline.
//
// The executor is a deterministic event-driven list scheduler: ready tasks
// are assigned to idle cores in criticality order; each assignment asks the
// Reconfigurator for an operating point (critical tasks want turbo,
// non-critical ones settle for the low point so their power funds the
// boost); task duration is work ÷ granted frequency plus the
// reconfiguration stall; energy integrates busy and idle power.
package simexec

import (
	"container/heap"
	"fmt"

	"repro/internal/power"
	"repro/internal/rsu"
	"repro/internal/tdg"
)

// Policy selects how desired operating points are chosen per task.
type Policy int

const (
	// Static runs every task at the nominal point (the baseline).
	Static Policy = iota
	// CriticalityAware runs critical-path tasks at turbo and the rest at
	// the low point (Section 3.1).
	CriticalityAware
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == CriticalityAware {
		return "criticality-aware"
	}
	return "static"
}

// Config parameterises one simulated execution.
type Config struct {
	// Cores is the machine width.
	Cores int
	// Table is the DVFS menu; Model the energy model.
	Table *power.DVFSTable
	Model power.Model
	// Recon arbitrates frequency requests (rsu.RSU, rsu.SoftwareDVFS or
	// rsu.Fixed).
	Recon rsu.Reconfigurator
	// Policy picks desired points.
	Policy Policy
	// CritSlack widens the critical set: tasks whose through-path is
	// within CritSlack of the critical path also count as critical.
	CritSlack float64
	// LowFrac is the deep-slack threshold: a non-critical task whose
	// through-path is below LowFrac × critical-path may run at the low
	// point without endangering the makespan even when stretched 2×.
	// 0 disables the low tier.
	LowFrac float64
}

// Result summarises one run.
type Result struct {
	// MakespanS is the parallel execution time in seconds.
	MakespanS float64
	// EnergyJ is total energy (busy + reconfiguration stalls + idle).
	EnergyJ float64
	// EDP is the energy-delay product.
	EDP float64
	// ReconOverheadS is the summed reconfiguration stall time.
	ReconOverheadS float64
	// TurboTasks and LowTasks count tasks granted the fastest/slowest
	// points (diagnostics for calibration).
	TurboTasks, LowTasks int
}

// readyItem orders the ready queue by criticality (bottom level desc).
type readyItem struct {
	id tdg.NodeID
	bl float64
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].bl != h[j].bl {
		return h[i].bl > h[j].bl
	}
	return h[i].id < h[j].id
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type completion struct {
	at   float64
	core int
	id   tdg.NodeID
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].core < h[j].core
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Run executes g under cfg.
func Run(g *tdg.Graph, cfg Config) (Result, error) {
	if cfg.Cores <= 0 {
		return Result{}, fmt.Errorf("simexec: non-positive core count")
	}
	if g.Len() == 0 {
		return Result{}, nil
	}
	bl, err := g.BottomLevels()
	if err != nil {
		return Result{}, err
	}
	crit, err := g.MarkCritical(cfg.CritSlack)
	if err != nil {
		return Result{}, err
	}
	through, err := g.ThroughPaths()
	if err != nil {
		return Result{}, err
	}
	_, cpCost, err := g.CriticalPath()
	if err != nil {
		return Result{}, err
	}

	indeg := make([]int, g.Len())
	for _, n := range g.Nodes() {
		indeg[n.ID] = len(n.Preds())
	}
	var ready readyHeap
	for _, n := range g.Nodes() {
		if indeg[n.ID] == 0 {
			heap.Push(&ready, readyItem{n.ID, bl[n.ID]})
		}
	}

	idle := make([]int, 0, cfg.Cores)
	for c := cfg.Cores - 1; c >= 0; c-- {
		idle = append(idle, c) // pop from the back → lowest id first
	}
	var events completionHeap
	res := Result{}
	var busyEnergy float64
	var busyTime float64
	now := 0.0
	remaining := g.Len()

	nominal := cfg.Table.Point(cfg.Table.Len() / 2)
	assign := func() {
		for len(idle) > 0 && ready.Len() > 0 {
			// Underloaded: the ready queue cannot fill the idle cores, so
			// the machine is latency-bound and the critical path is the
			// bottleneck. That is when boosting it pays — and when the
			// boost pool has headroom (idle cores hold no boost).
			underloaded := ready.Len() < len(idle)
			it := heap.Pop(&ready).(readyItem)
			core := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			desired := nominal
			if cfg.Policy == CriticalityAware {
				switch {
				case crit[it.id] && underloaded:
					desired = cfg.Table.Fastest()
				case cfg.LowFrac > 0 && through[it.id]+2*g.Node(it.id).Cost < cfg.LowFrac*cpCost:
					// Deep slack: even doubled in length (low point is half
					// the nominal frequency), the task's longest
					// through-path stays safely under the critical path.
					desired = cfg.Table.Slowest()
				default:
					desired = nominal
				}
			}
			op, overhead := cfg.Recon.Request(core, desired, now)
			switch op {
			case cfg.Table.Fastest():
				res.TurboTasks++
			case cfg.Table.Slowest():
				res.LowTasks++
			}
			cost := g.Node(it.id).Cost
			dur := overhead + cost/op.CyclesPerSec()
			// Busy energy: the stall burns power at the granted point too
			// (the core waits voltage-stable, not power-gated).
			busyEnergy += cfg.Model.BusyEnergy(op, cost)
			busyEnergy += (cfg.Model.DynPower(op) + cfg.Model.StatPower(op)) * overhead
			busyTime += dur
			res.ReconOverheadS += overhead
			heap.Push(&events, completion{at: now + dur, core: core, id: it.id})
		}
	}

	assign()
	for remaining > 0 {
		if events.Len() == 0 {
			return Result{}, fmt.Errorf("simexec: deadlock with %d tasks remaining (cyclic graph?)", remaining)
		}
		ev := heap.Pop(&events).(completion)
		now = ev.at
		cfg.Recon.Release(ev.core, now)
		idle = append(idle, ev.core)
		remaining--
		for _, s := range g.Node(ev.id).Succs() {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(&ready, readyItem{s, bl[s]})
			}
		}
		assign()
	}

	res.MakespanS = now
	idleTime := float64(cfg.Cores)*res.MakespanS - busyTime
	if idleTime < 0 {
		idleTime = 0
	}
	res.EnergyJ = busyEnergy + cfg.Model.IdleEnergy(cfg.Table.Slowest(), idleTime)
	res.EDP = power.EDP(res.EnergyJ, res.MakespanS)
	return res, nil
}
