package simexec

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/power"
	"repro/internal/rsu"
	"repro/internal/tdg"
)

func baseConfig(cores int) Config {
	table := power.DefaultTable()
	nominal, _ := table.ByName("nominal")
	return Config{
		Cores: cores, Table: table, Model: power.DefaultModel(),
		Recon: rsu.NewFixed(nominal), Policy: Static,
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Run(tdg.New(), baseConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanS != 0 || res.EnergyJ != 0 {
		t.Fatalf("empty graph result %+v", res)
	}
}

func TestRejectsBadCores(t *testing.T) {
	if _, err := Run(tdg.Chain(3, 1e6), Config{Cores: 0}); err == nil {
		t.Fatalf("zero cores must fail")
	}
}

func TestChainMakespanExact(t *testing.T) {
	// A chain of n tasks at nominal frequency runs in exactly n·cost/f.
	cfg := baseConfig(4)
	g := tdg.Chain(5, 2e6)
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nominal, _ := cfg.Table.ByName("nominal")
	want := 5 * 2e6 / nominal.CyclesPerSec()
	if !close(res.MakespanS, want, 1e-12) {
		t.Fatalf("makespan = %v, want %v", res.MakespanS, want)
	}
}

func TestEmbarrassingScalesWithCores(t *testing.T) {
	g := tdg.Embarrassing(64, 2e6)
	r1, err := Run(g, baseConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Run(g, baseConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	sp := r1.MakespanS / r16.MakespanS
	if sp < 15.9 || sp > 16.1 {
		t.Fatalf("embarrassing graph should scale 16x, got %.3f", sp)
	}
}

func TestWorkConservation(t *testing.T) {
	// Makespan is never below work/cores nor below the critical path.
	g := tdg.Cholesky(8, 1e6)
	cfg := baseConfig(8)
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nominal, _ := cfg.Table.ByName("nominal")
	_, cp, _ := g.CriticalPath()
	minBound := cp / nominal.CyclesPerSec()
	if wb := g.TotalCost() / nominal.CyclesPerSec() / 8; wb > minBound {
		minBound = wb
	}
	if res.MakespanS < minBound-1e-12 {
		t.Fatalf("makespan %v below lower bound %v", res.MakespanS, minBound)
	}
}

func TestCriticalityBeatsStaticWhenLatencyBound(t *testing.T) {
	// A small Cholesky on many cores is critical-path dominated: the
	// criticality policy with an RSU must beat the static baseline.
	g := tdg.Cholesky(8, 2e6)
	table := power.DefaultTable()
	model := power.DefaultModel()
	nominal, _ := table.ByName("nominal")
	static, err := Run(g, baseConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	nomBusy := model.DynPower(nominal) + model.StatPower(nominal)
	r := rsu.NewRSU(32, table, model, power.Budget{WattsCap: nomBusy * 32})
	cats, err := Run(g, Config{
		Cores: 32, Table: table, Model: model, Recon: r,
		Policy: CriticalityAware, CritSlack: 0.12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cats.MakespanS >= static.MakespanS {
		t.Fatalf("criticality policy must win when latency-bound: %v vs %v",
			cats.MakespanS, static.MakespanS)
	}
	if cats.TurboTasks == 0 {
		t.Fatalf("no tasks ran at turbo")
	}
}

func TestFig2PaperShape(t *testing.T) {
	rows, err := RunFig2(DefaultFig2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 variants, got %d", len(rows))
	}
	rsuRow := rows[2]
	// Paper §3.1: improvements over static reach 6.6% (performance).
	if rsuRow.Speedup < 1.02 {
		t.Errorf("RSU variant should clearly beat static at the default size: %.3f", rsuRow.Speedup)
	}
	if rsuRow.Speedup > 1.25 {
		t.Errorf("speedup implausibly high vs paper's 6.6%%: %.3f", rsuRow.Speedup)
	}
	// RSU overhead must be orders of magnitude below software DVFS.
	if rows[2].ReconOverheadS*10 > rows[1].ReconOverheadS {
		t.Errorf("RSU overhead %.6f not ≪ software %.6f",
			rows[2].ReconOverheadS, rows[1].ReconOverheadS)
	}
	if Fig2Table(rows).String() == "" {
		t.Fatalf("empty table")
	}
}

func TestFig2SweepReachesPaperEDP(t *testing.T) {
	sweep, err := RunFig2Sweep(context.Background(), 32)
	if err != nil {
		t.Fatal(err)
	}
	var maxEDP, maxSp float64
	for _, s := range sweep {
		if v := s.Rows[2].EDPImprovement; v > maxEDP {
			maxEDP = v
		}
		if v := s.Rows[2].Speedup; v > maxSp {
			maxSp = v
		}
	}
	// Paper: improvements reach 6.6% (perf) and 20.0% (EDP).
	if maxSp < 1.05 {
		t.Errorf("peak speedup %.3f below the paper's reach of 1.066", maxSp)
	}
	if maxEDP < 1.12 {
		t.Errorf("peak EDP improvement %.3f too far below the paper's 1.20", maxEDP)
	}
	if Fig2SweepTable(sweep).String() == "" {
		t.Fatalf("empty sweep table")
	}
}

func TestRSUScalingShape(t *testing.T) {
	rows, err := RunRSUScaling(context.Background(), []int{16, 64}, 12, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	// Software overhead grows with cores; RSU overhead stays flat.
	if rows[1].SoftwareOverhead <= rows[0].SoftwareOverhead {
		t.Errorf("software overhead should grow with cores: %v -> %v",
			rows[0].SoftwareOverhead, rows[1].SoftwareOverhead)
	}
	if rows[1].RSUOverhead != rows[0].RSUOverhead {
		t.Errorf("RSU overhead should be constant: %v vs %v",
			rows[0].RSUOverhead, rows[1].RSUOverhead)
	}
	if RSUScalingTable(rows).String() == "" {
		t.Fatalf("empty table")
	}
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "static" || CriticalityAware.String() != "criticality-aware" {
		t.Fatalf("policy strings")
	}
}

func close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Property: for random DAGs, the simulated makespan respects both lower
// bounds (critical path, work/cores) and the serial upper bound.
func TestQuickMakespanBounds(t *testing.T) {
	f := func(seed int64, coresRaw uint8) bool {
		cores := int(coresRaw%8) + 1
		g := tdg.RandomDAG(4, 5, seed)
		cfg := baseConfig(cores)
		res, err := Run(g, cfg)
		if err != nil {
			return false
		}
		nominal, _ := cfg.Table.ByName("nominal")
		f := nominal.CyclesPerSec()
		_, cp, err := g.CriticalPath()
		if err != nil {
			return false
		}
		lower := cp / f
		if wb := g.TotalCost() / f / float64(cores); wb > lower {
			lower = wb
		}
		upper := g.TotalCost() / f
		return res.MakespanS >= lower-1e-9 && res.MakespanS <= upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is positive and EDP = energy × makespan.
func TestQuickEnergyConsistent(t *testing.T) {
	f := func(seed int64) bool {
		g := tdg.RandomDAG(3, 4, seed)
		res, err := Run(g, baseConfig(4))
		if err != nil {
			return false
		}
		if g.Len() > 0 && res.EnergyJ <= 0 {
			return false
		}
		return close(res.EDP, res.EnergyJ*res.MakespanS, 1e-9*res.EDP+1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
