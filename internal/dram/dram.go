// Package dram models the off-chip memory controllers of the simulated
// manycore. Each access pays an unloaded service latency (row activation +
// column access + transfer) plus a congestion delay derived from the
// controller's recent bandwidth utilisation, M/M/1-style:
//
//	delay ≈ AccessCycles · ρ/(1−ρ),  ρ = demand / capacity  (capped)
//
// The simulator reports wall-clock progress through EndRound; utilisation is
// an exponential moving average over rounds, so the model is closed-loop:
// saturated controllers slow the cores down, which lowers demand per cycle.
package dram

// Config holds the controller's cost constants.
type Config struct {
	// AccessCycles is the unloaded latency of one line fetch (row
	// activation + column access), in core cycles.
	AccessCycles int
	// BytesPerCycle is the sustained pin bandwidth in bytes per core cycle.
	BytesPerCycle float64
	// AccessEnergyPJ is the energy of transferring one cache line
	// (I/O + DRAM core), in picojoules.
	AccessEnergyPJ float64
	// LineBytes is the transfer granularity.
	LineBytes int
	// MaxQueueFactor caps the congestion delay at MaxQueueFactor ×
	// AccessCycles (a saturated controller cannot delay forever because
	// upstream buffers throttle the cores).
	MaxQueueFactor float64
}

// DefaultConfig returns constants for a DDR-class controller feeding a
// 64-core chip: 200-cycle unloaded latency, 16 B/cycle, 640 pJ per line.
func DefaultConfig() Config {
	return Config{
		AccessCycles:   200,
		BytesPerCycle:  24,
		AccessEnergyPJ: 640,
		LineBytes:      64,
		MaxQueueFactor: 3,
	}
}

// Stats holds accumulated controller counters.
type Stats struct {
	Accesses  uint64
	Bytes     uint64
	EnergyPJ  float64
	QueueingC uint64 // total congestion cycles charged on top of service
}

// Controller is one memory controller instance.
type Controller struct {
	cfg Config
	// roundBytes accumulates demand since the last EndRound.
	roundBytes float64
	// util is the EMA of bandwidth utilisation in [0, utilCap].
	util  float64
	stats Stats
}

// utilCap keeps ρ/(1−ρ) finite.
const utilCap = 0.96

// emaWeight is the weight of the newest round in the utilisation EMA.
const emaWeight = 0.5

// New creates a controller.
func New(cfg Config) *Controller {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.BytesPerCycle <= 0 {
		cfg.BytesPerCycle = 16
	}
	if cfg.MaxQueueFactor <= 0 {
		cfg.MaxQueueFactor = 8
	}
	return &Controller{cfg: cfg}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Utilization returns the current bandwidth-utilisation estimate in [0,1).
func (c *Controller) Utilization() float64 { return c.util }

// UnloadedLatency returns the congestion-free latency for a transfer of the
// given bytes (rounded up to lines).
func (c *Controller) UnloadedLatency(bytes int) int {
	lines := c.lines(bytes)
	transfer := int(float64(lines*c.cfg.LineBytes) / c.cfg.BytesPerCycle)
	return c.cfg.AccessCycles + transfer
}

func (c *Controller) lines(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + c.cfg.LineBytes - 1) / c.cfg.LineBytes
}

// Access models one transfer of the given bytes and returns its latency in
// cycles, including the congestion delay implied by the current utilisation
// estimate.
func (c *Controller) Access(bytes int) int {
	lines := c.lines(bytes)
	sz := lines * c.cfg.LineBytes
	c.roundBytes += float64(sz)
	c.stats.Accesses++
	c.stats.Bytes += uint64(sz)
	c.stats.EnergyPJ += float64(lines) * c.cfg.AccessEnergyPJ
	queue := c.queueDelay()
	c.stats.QueueingC += uint64(queue)
	return c.UnloadedLatency(bytes) + queue
}

// queueDelay converts utilisation into waiting cycles.
func (c *Controller) queueDelay() int {
	u := c.util
	if u <= 0 {
		return 0
	}
	d := float64(c.cfg.AccessCycles) * u / (1 - u)
	maxD := c.cfg.MaxQueueFactor * float64(c.cfg.AccessCycles)
	if d > maxD {
		d = maxD
	}
	return int(d)
}

// EndRound informs the controller that roundCycles of wall-clock time
// elapsed while the demand accumulated since the previous call arrived.
// It updates the utilisation estimate and resets the demand window.
func (c *Controller) EndRound(roundCycles int) {
	if roundCycles <= 0 {
		return
	}
	inst := c.roundBytes / (float64(roundCycles) * c.cfg.BytesPerCycle)
	if inst > utilCap {
		inst = utilCap
	}
	c.util = (1-emaWeight)*c.util + emaWeight*inst
	c.roundBytes = 0
}

// Reset zeroes counters, demand and utilisation.
func (c *Controller) Reset() {
	c.roundBytes = 0
	c.util = 0
	c.stats = Stats{}
}
