package dram

import (
	"testing"
	"testing/quick"
)

func TestAccessLatencyUnloaded(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	lat := c.Access(64)
	want := cfg.AccessCycles + int(64/cfg.BytesPerCycle)
	if lat != want {
		t.Fatalf("latency = %d, want %d", lat, want)
	}
	if lat != c.UnloadedLatency(64) {
		t.Fatalf("idle Access must equal UnloadedLatency")
	}
}

func TestRoundUpToLines(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(1)
	if got := c.Stats().Bytes; got != 64 {
		t.Fatalf("bytes = %d, want 64 (rounded to a line)", got)
	}
	c.Access(65)
	if got := c.Stats().Bytes; got != 64+128 {
		t.Fatalf("bytes = %d, want 192", got)
	}
}

func TestZeroBytesMeansOneLine(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(0)
	if got := c.Stats().Bytes; got != 64 {
		t.Fatalf("bytes = %d", got)
	}
}

func TestUtilizationRaisesLatency(t *testing.T) {
	c := New(DefaultConfig())
	idle := c.Access(64)
	// Saturate: huge demand over a short round.
	c.Access(1 << 20)
	c.EndRound(100)
	loaded := c.Access(64)
	if loaded <= idle {
		t.Fatalf("saturated controller must be slower: %d vs %d", loaded, idle)
	}
	if got := c.Utilization(); got <= 0.4 {
		t.Fatalf("utilisation should be high, got %v", got)
	}
}

func TestUtilizationDecays(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(1 << 20)
	c.EndRound(100)
	high := c.Utilization()
	// Several idle rounds decay the EMA.
	for i := 0; i < 10; i++ {
		c.EndRound(10000)
	}
	if got := c.Utilization(); got >= high/10 {
		t.Fatalf("utilisation should decay: %v -> %v", high, got)
	}
}

func TestQueueDelayCapped(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	// Pin utilisation at the cap via repeated saturated rounds.
	for i := 0; i < 20; i++ {
		c.Access(1 << 24)
		c.EndRound(10)
	}
	lat := c.Access(64)
	maxLat := c.UnloadedLatency(64) + int(cfg.MaxQueueFactor*float64(cfg.AccessCycles))
	if lat > maxLat {
		t.Fatalf("latency %d exceeds cap %d", lat, maxLat)
	}
}

func TestEnergyPerLine(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(128) // 2 lines
	if got := c.Stats().EnergyPJ; got != 2*640 {
		t.Fatalf("energy = %v", got)
	}
}

func TestEndRoundIgnoresNonPositive(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(1 << 20)
	c.EndRound(0)
	c.EndRound(-5)
	if c.Utilization() != 0 {
		t.Fatalf("non-positive rounds must not update utilisation")
	}
}

func TestReset(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(64)
	c.EndRound(1)
	c.Reset()
	if c.Stats().Accesses != 0 || c.Utilization() != 0 {
		t.Fatalf("reset failed: %+v util=%v", c.Stats(), c.Utilization())
	}
}

// Property: latency is monotone non-decreasing in utilisation.
func TestQuickLatencyMonotoneInUtil(t *testing.T) {
	f := func(demand uint32, round uint16) bool {
		c1 := New(DefaultConfig())
		c2 := New(DefaultConfig())
		r := int(round%1000) + 1
		c1.Access(int(demand % (1 << 22)))
		c1.EndRound(r)
		c2.Access(int(demand%(1<<22)) * 2)
		c2.EndRound(r)
		return c2.Access(64) >= c1.Access(64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: utilisation stays in [0, 1).
func TestQuickUtilBounded(t *testing.T) {
	f := func(ops []uint32) bool {
		c := New(DefaultConfig())
		for _, op := range ops {
			c.Access(int(op % (1 << 20)))
			c.EndRound(int(op%512) + 1)
			if u := c.Utilization(); u < 0 || u >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
