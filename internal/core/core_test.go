package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "loc", "rsu"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry size %d", len(exps))
	}
	for i, e := range exps {
		if e.Name != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.Name, want[i])
		}
		if e.Paper == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.Name)
		}
	}
}

func TestByName(t *testing.T) {
	e, err := ByName("fig3")
	if err != nil || e.Name != "fig3" {
		t.Fatalf("ByName: %v %v", e.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatalf("unknown experiment must error")
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range Experiments() {
		var buf bytes.Buffer
		if err := e.Run(&buf, true); err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.Name)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig1", "Figure 3", "Figure 4", "bodytrack", "rsu"} {
		if !strings.Contains(out, want) {
			t.Errorf("combined output missing %q", want)
		}
	}
}
