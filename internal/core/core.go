// Package core is the front door of the runtime-aware-architecture (RAA)
// reproduction: it names every experiment of the paper's evaluation, knows
// how to run each one end-to-end, and renders the paper-style tables and
// figures. The cmd/raa-bench binary and the root benchmark suite are thin
// wrappers around this package.
//
// Experiments (see DESIGN.md for the full index):
//
//	fig1  hybrid SPM+cache hierarchy vs cache-only (64-core machine)
//	fig2  criticality-aware DVFS with the RSU vs static (32 cores)
//	fig3  VSR sort vs vectorised sorts vs scalar baseline
//	fig4  resilient CG: checkpoint / restart / FEIR / AFEIR
//	fig5  OmpSs vs Pthreads scalability on PARSEC-class pipelines
//	loc   Section-5 lines-of-code study
//	rsu   RSU vs software reconfiguration scaling sweep
package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/hybridmem"
	"repro/internal/nas"
	"repro/internal/parsecsim"
	"repro/internal/simexec"
	"repro/internal/solver"
	"repro/internal/vsort"
)

// Experiment is one runnable reproduction target.
type Experiment struct {
	// Name is the CLI identifier (fig1 … fig5, loc, rsu).
	Name string
	// Paper describes what the experiment reproduces.
	Paper string
	// Run executes the experiment and writes its report to w. quick
	// selects a reduced problem scale for smoke runs.
	Run func(w io.Writer, quick bool) error
}

// Experiments returns the registry in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{
			Name:  "fig1",
			Paper: "Figure 1: hybrid memory hierarchy speedups (time/energy/NoC) on 64 cores",
			Run:   runFig1,
		},
		{
			Name:  "fig2",
			Paper: "Figure 2 / §3.1: criticality-aware DVFS, RSU vs software, 32 cores",
			Run:   runFig2,
		},
		{
			Name:  "fig3",
			Paper: "Figure 3: VSR sort speedups over scalar baseline across MVL and lanes",
			Run:   runFig3,
		},
		{
			Name:  "fig4",
			Paper: "Figure 4: CG convergence under one DUE for five recovery schemes",
			Run:   runFig4,
		},
		{
			Name:  "fig5",
			Paper: "Figure 5: OmpSs vs Pthreads scalability (bodytrack, facesim)",
			Run:   runFig5,
		},
		{
			Name:  "loc",
			Paper: "§5: lines-of-code comparison of the PARSEC ports",
			Run:   runLoC,
		},
		{
			Name:  "rsu",
			Paper: "§3.1: RSU vs software reconfiguration overhead across machine sizes",
			Run:   runRSUScaling,
		},
	}
}

// ByName finds an experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	var names []string
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (have %v and \"all\")", name, names)
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, quick bool) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "==> %s — %s\n\n", e.Name, e.Paper)
		if err := e.Run(w, quick); err != nil {
			return fmt.Errorf("core: %s: %w", e.Name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig1(w io.Writer, quick bool) error {
	cfg := hybridmem.DefaultConfig()
	class := nas.ClassBench
	if quick {
		class = nas.ClassTest
		mc := cfg.Mesh
		mc.Width, mc.Height = 4, 4
		cfg.Mesh = mc
		cfg.NCores = 16
		cfg.MemControllerTiles = []int{0, 3, 12, 15}
	}
	cs, err := hybridmem.CompareSuite(cfg, nas.Suite(class))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, hybridmem.Table(cs))
	fmt.Fprintf(w, "paper: AVG time +14.7%%, energy +18.5%%, NoC traffic +31.2%%\n")
	return nil
}

func runFig2(w io.Writer, quick bool) error {
	cfg := simexec.DefaultFig2Config()
	if quick {
		cfg.Blocks = 10
	}
	rows, err := simexec.RunFig2(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, simexec.Fig2Table(rows))
	if !quick {
		sweep, err := simexec.RunFig2Sweep(cfg.Cores)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, simexec.Fig2SweepTable(sweep))
	}
	fmt.Fprintf(w, "paper: improvements over static reach 6.6%% (perf) and 20.0%% (EDP)\n")
	return nil
}

func runFig3(w io.Writer, quick bool) error {
	cfg := vsort.DefaultFig3Config()
	if quick {
		cfg.N = 1 << 14
	}
	pts, err := vsort.RunFig3(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, vsort.Fig3Table(pts, cfg.Lanes))
	s := vsort.Summarize(pts, cfg.Lanes[len(cfg.Lanes)-1])
	fmt.Fprintf(w, "VSR best 1-lane %.1f× (paper 7.9–11.7×), best %d-lane %.1f× (paper 14.9–20.6×), vs next best %.2f× (paper 3.4×)\n",
		s.VSRBest1Lane, cfg.Lanes[len(cfg.Lanes)-1], s.VSRBestMaxLane, s.VSRvsNextBest)
	return nil
}

func runFig4(w io.Writer, quick bool) error {
	cfg := solver.DefaultFig4Config()
	if quick {
		cfg.Grid = 64
	}
	fr, err := solver.RunFig4(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, fr.Table())
	fmt.Fprintln(w, fr.Plot())
	fmt.Fprintf(w, "paper: FEIR close to ideal; AFEIR smaller still; ckpt pays rollback; restart pays convergence\n")
	return nil
}

func runFig5(w io.Writer, quick bool) error {
	threads := parsecsim.DefaultThreads()
	if quick {
		threads = []int{1, 4, 16}
	}
	pts, err := parsecsim.RunFig5(threads)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, parsecsim.Fig5Table(pts))
	for _, p := range parsecsim.Fig5Plots(pts) {
		fmt.Fprintln(w, p)
	}
	fmt.Fprintf(w, "paper: bodytrack and facesim reach ~12× and ~10× at 16 threads with tasks\n")
	return nil
}

func runLoC(w io.Writer, _ bool) error {
	fmt.Fprintln(w, parsecsim.LoCTable())
	return nil
}

func runRSUScaling(w io.Writer, quick bool) error {
	cores := []int{16, 32, 64, 128}
	blocks := 16
	if quick {
		cores = []int{16, 32}
		blocks = 10
	}
	rows, err := simexec.RunRSUScaling(cores, blocks, 2e6)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, simexec.RSUScalingTable(rows))
	return nil
}
