// Package stats provides the small numerical and presentation toolkit shared
// by every experiment harness in the repository: summary statistics
// (mean, geometric mean, percentiles), labelled series, formatted tables and
// a minimal ASCII line plot used to render paper figures on a terminal.
//
// The package is deliberately dependency-free (stdlib only) and allocates
// little; experiment harnesses call into it at the end of a run, never on the
// simulated hot path.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All inputs must be positive;
// non-positive entries are skipped so a single degenerate sample cannot
// poison a speedup summary. Returns 0 if no positive entries exist.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies xs; the input is not
// modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Speedup returns base/v, the conventional "times faster" ratio, guarding
// against a zero denominator.
func Speedup(base, v float64) float64 {
	if v == 0 {
		return 0
	}
	return base / v
}

// Point is a single (X, Y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named, ordered sequence of points — one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Ys returns the Y values of the series in order.
func (s *Series) Ys() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// Xs returns the X values of the series in order.
func (s *Series) Xs() []float64 {
	xs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
	}
	return xs
}

// YAt returns the Y value at the first point whose X equals x, and whether
// such a point exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}
