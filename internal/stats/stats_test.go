package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	// Non-positive entries are skipped.
	if got := GeoMean([]float64{-5, 0, 8, 2}); !almostEq(got, 4, 1e-12) {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean([]float64{0, -1}); got != 0 {
		t.Fatalf("GeoMean of non-positives = %v, want 0", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be modified.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatalf("Percentile modified input: %v", ys)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatalf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatalf("empty Min/Max should be infinities")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 5); got != 2 {
		t.Fatalf("Speedup = %v, want 2", got)
	}
	if got := Speedup(10, 0); got != 0 {
		t.Fatalf("Speedup by zero = %v, want 0", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "a"
	s.Add(1, 10)
	s.Add(2, 20)
	if len(s.Points) != 2 {
		t.Fatalf("len = %d", len(s.Points))
	}
	if xs := s.Xs(); xs[0] != 1 || xs[1] != 2 {
		t.Fatalf("Xs = %v", xs)
	}
	if ys := s.Ys(); ys[0] != 10 || ys[1] != 20 {
		t.Fatalf("Ys = %v", ys)
	}
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Fatalf("YAt(2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Fatalf("YAt(3) should be missing")
	}
}

func TestTableString(t *testing.T) {
	tb := NewTable("T", "name", "v")
	tb.AddRow("alpha", "1.0")
	tb.AddRowF("beta", "%.2f", 2.5)
	out := tb.String()
	for _, want := range []string{"T", "name", "alpha", "beta", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `he said "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"he said ""hi"""`) {
		t.Fatalf("CSV escaping wrong:\n%s", csv)
	}
}

func TestPlotRenders(t *testing.T) {
	p := NewPlot("fig", "x", "y")
	s := &Series{Name: "line"}
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	p.AddSeries(s)
	out := p.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "line") {
		t.Fatalf("plot output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("plot output has no markers:\n%s", out)
	}
}

func TestPlotLogY(t *testing.T) {
	p := NewPlot("conv", "t", "residual")
	p.LogY = true
	s := &Series{Name: "cg"}
	s.Add(0, 1)
	s.Add(1, 1e-3)
	s.Add(2, 1e-6)
	s.Add(3, 0) // must be skipped, not crash
	p.AddSeries(s)
	out := p.String()
	if !strings.Contains(out, "log10(residual)") {
		t.Fatalf("log plot label missing:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty", "x", "y")
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot should say so:\n%s", out)
	}
}

// Property: mean is bounded by min and max.
func TestQuickMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: geometric mean of positives is bounded by min and max and is
// scale-equivariant: GeoMean(c*xs) == c*GeoMean(xs).
func TestQuickGeoMeanScale(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1 // positive
		}
		g := GeoMean(xs)
		if g < Min(xs)-1e-9 || g > Max(xs)+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = 3 * xs[i]
		}
		return almostEq(GeoMean(scaled), 3*g, 1e-6*g+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
