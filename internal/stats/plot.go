package stats

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders one or more series as an ASCII line chart, the terminal
// equivalent of a paper figure. Each series gets a distinct marker; axes are
// linear. Width and height are the interior cell dimensions.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []*Series
	// LogY plots log10 of Y values (used for residual-norm convergence
	// figures such as the paper's Fig. 4).
	LogY bool
}

// NewPlot creates a plot with sensible terminal dimensions.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// AddSeries appends a series to the plot.
func (p *Plot) AddSeries(s *Series) { p.Series = append(p.Series, s) }

var plotMarkers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// String renders the chart.
func (p *Plot) String() string {
	w, h := p.Width, p.Height
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tf := func(y float64) float64 {
		if p.LogY {
			if y <= 0 {
				return math.Inf(-1)
			}
			return math.Log10(y)
		}
		return y
	}
	for _, s := range p.Series {
		for _, pt := range s.Points {
			y := tf(pt.Y)
			if math.IsInf(y, -1) || math.IsNaN(y) {
				continue
			}
			if pt.X < xmin {
				xmin = pt.X
			}
			if pt.X > xmax {
				xmax = pt.X
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if math.IsInf(xmin, 1) {
		return p.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		marker := plotMarkers[si%len(plotMarkers)]
		var prevC, prevR = -1, -1
		for _, pt := range s.Points {
			y := tf(pt.Y)
			if math.IsInf(y, -1) || math.IsNaN(y) {
				continue
			}
			c := int(math.Round((pt.X - xmin) / (xmax - xmin) * float64(w-1)))
			r := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			if c < 0 || c >= w || r < 0 || r >= h {
				continue
			}
			// Draw a crude connecting segment so sparse series read as lines.
			if prevC >= 0 {
				steps := maxInt(absInt(c-prevC), absInt(r-prevR))
				for k := 1; k < steps; k++ {
					ic := prevC + (c-prevC)*k/steps
					ir := prevR + (r-prevR)*k/steps
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			grid[r][c] = marker
			prevC, prevR = c, r
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	ylab := p.YLabel
	if p.LogY {
		ylab = "log10(" + ylab + ")"
	}
	fmt.Fprintf(&b, "%s\n", ylab)
	for i, row := range grid {
		yv := ymax - (ymax-ymin)*float64(i)/float64(h-1)
		fmt.Fprintf(&b, "%10.3g |%s\n", yv, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g   (%s)\n", "", w/2, xmin, w-w/2, xmax, p.XLabel)
	for si, s := range p.Series {
		fmt.Fprintf(&b, "  %c %s\n", plotMarkers[si%len(plotMarkers)], s.Name)
	}
	return b.String()
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
