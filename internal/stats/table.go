package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used to print paper-style
// result tables. Cells are strings; numeric helpers format consistently.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowF appends a row where the first cell is a label and the rest are
// float64 values formatted with the given verb (e.g. "%.3f").
func (t *Table) AddRowF(label, verb string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total >= 2 {
		total -= 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no title line).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
